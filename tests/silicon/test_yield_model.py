"""Bin distributions and lottery odds."""

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.silicon.process import PROCESS_28NM_LP
from repro.silicon.yield_model import (
    bin_distribution,
    empirical_bin_distribution,
    expected_leak_factor,
    lottery_odds_table,
    probability_at_least_bin,
)


class TestAnalyticDistribution:
    def test_shares_sum_to_one(self):
        shares = bin_distribution(PROCESS_28NM_LP, bin_count=7)
        assert sum(s.fraction for s in shares) == pytest.approx(1.0)

    def test_middle_bins_dominate(self):
        shares = bin_distribution(PROCESS_28NM_LP, bin_count=7)
        fractions = [s.fraction for s in shares]
        assert max(fractions) == fractions[3]  # the nominal-silicon bin

    def test_symmetric_tails(self):
        shares = bin_distribution(PROCESS_28NM_LP, bin_count=7)
        assert shares[0].fraction == pytest.approx(shares[6].fraction)

    def test_golden_bins_are_rare(self):
        # Bin-0 chips -- the Figure 6 winners -- are a small minority.
        shares = bin_distribution(PROCESS_28NM_LP, bin_count=7)
        assert shares[0].fraction < 0.12

    def test_single_bin_is_everything(self):
        shares = bin_distribution(PROCESS_28NM_LP, bin_count=1)
        assert shares[0].fraction == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bin_distribution(PROCESS_28NM_LP, bin_count=0)
        with pytest.raises(ConfigurationError):
            bin_distribution(PROCESS_28NM_LP, bin_count=7, span_sigma=0.0)


class TestEmpiricalCrossCheck:
    def test_matches_analytic_within_sampling_noise(self):
        analytic = bin_distribution(PROCESS_28NM_LP, bin_count=7)
        empirical = empirical_bin_distribution(
            PROCESS_28NM_LP, bin_count=7, sample_count=6000, seed=3
        )
        for a, e in zip(analytic, empirical):
            assert e.fraction == pytest.approx(a.fraction, abs=0.02)

    def test_sample_count_validated(self):
        with pytest.raises(ConfigurationError):
            empirical_bin_distribution(PROCESS_28NM_LP, 7, sample_count=0)


class TestLotteryOdds:
    def test_cumulative_probability(self):
        shares = bin_distribution(PROCESS_28NM_LP, bin_count=7)
        at_least_2 = probability_at_least_bin(shares, 2)
        assert at_least_2 == pytest.approx(
            sum(s.fraction for s in shares[:3])
        )

    def test_everything_is_at_least_worst_bin(self):
        shares = bin_distribution(PROCESS_28NM_LP, bin_count=7)
        assert probability_at_least_bin(shares, 6) == pytest.approx(1.0)

    def test_unknown_bin_rejected(self):
        shares = bin_distribution(PROCESS_28NM_LP, bin_count=7)
        with pytest.raises(AnalysisError):
            probability_at_least_bin(shares, 9)

    def test_leak_factor_grows_with_bin(self):
        leaks = expected_leak_factor(PROCESS_28NM_LP, 7)
        ordered = [leaks[i] for i in range(7)]
        assert ordered == sorted(ordered)
        assert ordered[0] < 1.0 < ordered[-1]

    def test_table_shape(self):
        table = lottery_odds_table(PROCESS_28NM_LP, bin_count=7)
        assert len(table) == 7
        cumulative = [row[2] for row in table]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == pytest.approx(1.0)
