"""Micro-kernel suite."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.kernels import KERNELS, characterize, kernel


class TestSuite:
    def test_four_kernels(self):
        assert set(KERNELS) == {
            "pi_spigot", "alu_mix", "stream_walk", "pointer_chase",
        }

    def test_lookup(self):
        assert kernel("alu_mix").name == "alu_mix"
        with pytest.raises(ConfigurationError):
            kernel("matmul")

    def test_betas_ordered_by_memory_character(self):
        assert (
            KERNELS["pi_spigot"].suggested_beta
            <= KERNELS["alu_mix"].suggested_beta
            < KERNELS["stream_walk"].suggested_beta
            < KERNELS["pointer_chase"].suggested_beta
        )

    def test_paper_workload_is_cpu_bound(self):
        assert KERNELS["pi_spigot"].suggested_beta == 0.0


class TestKernelsActuallyCompute:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_deterministic(self, name):
        run = KERNELS[name].run
        assert run(200) == run(200)

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_size_changes_result_or_work(self, name):
        run = KERNELS[name].run
        # Different problem sizes must not alias to identical checksums
        # (which would hint the kernel ignores its input).
        assert run(128) != run(257)

    def test_pi_spigot_checksum_is_digit_sum(self):
        # First five digits 3,1,4,1,5 sum to 14.
        assert KERNELS["pi_spigot"].run(5) == 14

    def test_pointer_chase_visits_valid_indices(self):
        result = KERNELS["pointer_chase"].run(64)
        assert 0 <= result < 64


class TestCharacterize:
    def test_profile_fields(self):
        profile = characterize("alu_mix", small=300, large=1200)
        assert profile.name == "alu_mix"
        assert profile.seconds_per_unit > 0
        assert 0.3 < profile.scaling_exponent < 3.0

    def test_linear_kernel_scales_linearly(self):
        profile = characterize("alu_mix", small=2000, large=16000)
        assert profile.scaling_exponent == pytest.approx(1.0, abs=0.5)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            characterize("alu_mix", small=100, large=100)

    def test_beta_passthrough(self):
        assert characterize("stream_walk").suggested_beta == 0.45
