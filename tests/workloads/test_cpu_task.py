"""Task specifications."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.cpu_task import FixedDurationTask, FixedWorkTask


class TestFixedDuration:
    def test_paper_workload(self):
        task = FixedDurationTask(duration_s=300.0)
        assert task.duration_s == 300.0
        assert task.utilization == 1.0

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedDurationTask(duration_s=0.0)

    def test_zero_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedDurationTask(duration_s=10.0, utilization=0.0)

    def test_partial_utilization(self):
        assert FixedDurationTask(duration_s=10.0, utilization=0.5).utilization == 0.5


class TestFixedWork:
    def test_defaults(self):
        task = FixedWorkTask(iterations=500.0)
        assert task.timeout_s == 7200.0

    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedWorkTask(iterations=0.0)

    def test_zero_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedWorkTask(iterations=10.0, timeout_s=0.0)

    def test_bad_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedWorkTask(iterations=10.0, utilization=1.5)
