"""The pi-digit workload."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.pi_digits import (
    PI_FIRST_50_DIGITS,
    pi_digit_stream,
    pi_digits,
    pi_iteration,
)


class TestPiDigits:
    def test_first_digits_correct(self):
        assert pi_digits(50) == PI_FIRST_50_DIGITS

    def test_starts_with_3141(self):
        assert pi_digits(4) == "3141"

    def test_stream_yields_ints(self):
        stream = pi_digit_stream()
        first = [next(stream) for _ in range(5)]
        assert first == [3, 1, 4, 1, 5]

    def test_hundredth_digit(self):
        # The 100th decimal digit of pi (counting the leading 3) is 7.
        assert pi_digits(100)[-1] == "7"

    def test_prefix_stability(self):
        # Longer computations agree with shorter ones on their prefix.
        assert pi_digits(200).startswith(pi_digits(120))

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            pi_digits(0)


class TestPiIteration:
    def test_digest_is_deterministic(self):
        assert pi_iteration(digit_count=500) == pi_iteration(digit_count=500)

    def test_digest_differs_by_digit_count(self):
        assert pi_iteration(digit_count=100) != pi_iteration(digit_count=101)

    def test_digest_is_sha256_hex(self):
        digest = pi_iteration(digit_count=64)
        assert len(digest) == 64
        int(digest, 16)  # parses as hex


@pytest.mark.slow
class TestFullIteration:
    def test_paper_sized_iteration(self):
        # One full benchmark iteration: 4,285 digits.  This is the real
        # workload a device under test executes.
        digest = pi_iteration()
        assert len(digest) == 64
