"""Whole-stack determinism: same seed, same campaign, same numbers."""

from repro.core.experiments import unconstrained
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.device.fleet import build_device, PAPER_FLEETS


class TestDeterminism:
    def test_identical_campaigns_identical_results(self, fast_config):
        def run():
            config = CampaignConfig(
                accubench=fast_config, use_thermabox=False, root_seed=99
            )
            runner = CampaignRunner(config)
            device = build_device(PAPER_FLEETS["Nexus 5"][2], root_seed=99)
            return runner.run_device(device, unconstrained(), iterations=2)

        first = run()
        second = run()
        assert [i.iterations_completed for i in first.iterations] == [
            i.iterations_completed for i in second.iterations
        ]
        assert [i.energy_j for i in first.iterations] == [
            i.energy_j for i in second.iterations
        ]

    def test_different_seeds_differ(self, fast_config):
        def run(seed):
            config = CampaignConfig(
                accubench=fast_config, use_thermabox=False, root_seed=seed
            )
            runner = CampaignRunner(config)
            device = build_device(PAPER_FLEETS["Nexus 5"][2], root_seed=seed)
            return runner.run_device(device, unconstrained(), iterations=1)

        a = run(1)
        b = run(2)
        # Noise streams differ; energies will not be bit-identical.
        assert a.iterations[0].energy_j != b.iterations[0].energy_j

    def test_serial_isolation(self, fast_config):
        # Different units of the same model draw independent noise: the
        # sensor/OS streams are keyed by serial.
        device_a = build_device(PAPER_FLEETS["Nexus 5"][0])
        device_b = build_device(PAPER_FLEETS["Nexus 5"][1])
        assert device_a.os.rng.random() != device_b.os.rng.random()
