"""Cross-cutting physical invariants, property-tested.

These hold for *any* parameterization, not just the calibrated catalog:
energy conservation in the thermal network, monotone physics (more
voltage → more power; hotter → leakier), and accounting identities in the
instruments and engine.  The engine-level identities run under the
:mod:`repro.check` runtime invariant suite — the same checkers
``repro-bench check --invariants`` attaches — so a drift fails here the
same way it would fail in the field.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.check import InvariantSuite, Tolerance, ToleranceSpec
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.sim.engine import World
from repro.thermal.network import ThermalLink, ThermalNetwork, ThermalNode


class TestThermalEnergyBalance:
    @settings(max_examples=20, deadline=None)
    @given(
        st.floats(min_value=0.5, max_value=8.0),
        st.floats(min_value=1.0, max_value=20.0),
        st.floats(min_value=1.0, max_value=10.0),
    )
    def test_stored_plus_leaked_equals_injected(self, power, capacity, resistance):
        """Energy injected = energy stored + energy conducted to ambient."""
        net = ThermalNetwork(
            nodes=[ThermalNode("die", capacity), ThermalNode("ambient", math.inf)],
            links=[ThermalLink("die", "ambient", resistance)],
            initial_temp_c=25.0,
        )
        dt = 0.05
        steps = 400
        leaked = 0.0
        for _ in range(steps):
            # Integrate the boundary flux with the pre-step temperature --
            # matching Euler's zero-order hold inside the network.
            leaked += (net.temperature("die") - 25.0) / resistance * dt
            net.step({"die": power}, dt)
        injected = power * steps * dt
        stored = capacity * (net.temperature("die") - 25.0)
        assert injected == pytest.approx(stored + leaked, rel=0.02)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=30.0, max_value=90.0))
    def test_no_power_never_heats(self, start_temp):
        net = ThermalNetwork(
            nodes=[ThermalNode("die", 3.0), ThermalNode("ambient", math.inf)],
            links=[ThermalLink("die", "ambient", 2.0)],
            initial_temp_c=25.0,
        )
        net.set_temperature("die", start_temp)
        previous = start_temp
        for _ in range(100):
            net.step({}, 0.1)
            current = net.temperature("die")
            assert current <= previous + 1e-9
            previous = current


class TestDevicePowerMonotonicity:
    def _power_at(self, device, freq_mhz):
        device.acquire_wakelock()
        device.start_load()
        device.set_fixed_frequency(freq_mhz)
        report = device.step(26.0, 0.1)
        return report.soc_power_w

    def test_power_monotone_in_frequency(self):
        device = build_device(PAPER_FLEETS["Nexus 5"][1])
        device.connect_supply(MonsoonPowerMonitor(3.8))
        ladder = (300.0, 960.0, 1574.0, 2265.0)
        powers = [self._power_at(device, f) for f in ladder]
        assert powers == sorted(powers)

    def test_supply_power_at_least_rail_power(self):
        device = build_device(PAPER_FLEETS["Nexus 5"][1])
        device.connect_supply(MonsoonPowerMonitor(3.8))
        device.acquire_wakelock()
        device.start_load()
        report = device.step(26.0, 0.1)
        # Regulator losses mean the supply side always exceeds the SoC rail.
        assert report.supply_power_w > report.soc_power_w


class TestEngineAccountingIdentities:
    #: Trace-integral vs instrument-accumulator drift budget.
    ACCOUNTING_SPEC = ToleranceSpec(
        name="engine-accounting",
        fields=(("energy_j", Tolerance(rel_tol=0.01)),),
    )

    def test_monsoon_energy_equals_power_time_integral(self):
        device = build_device(PAPER_FLEETS["Nexus 5"][0])
        monsoon = MonsoonPowerMonitor(3.8)
        device.connect_supply(monsoon)
        world = World(device, dt=0.1, trace_decimation=1)
        # The runtime EnergyConservation checker asserts the same identity
        # step by step while the run is still live.
        suite = InvariantSuite()
        world.attach_observer(suite)
        device.acquire_wakelock()
        device.start_load()
        world.run_for(20.0)
        assert suite.steps_checked == 200
        # End-of-run: the trace records supply power each step; its
        # integral must match the Monsoon's accumulator.
        powers = world.trace.column("power")
        divergence = self.ACCOUNTING_SPEC.compare_scalar(
            "energy_j",
            monsoon.energy_j,
            float(powers.sum()) * 0.1,
            context="monsoon-vs-trace",
        )
        assert divergence is None, divergence.describe()

    def test_ops_total_matches_frequency_integral(self):
        device = build_device(PAPER_FLEETS["Nexus 5"][0])
        device.connect_supply(MonsoonPowerMonitor(3.8))
        # Silence OS steal so the identity is exact.
        device.os.steal_mean = 0.0
        device.os.steal_sigma = 0.0
        world = World(device, dt=0.1, trace_decimation=1)
        device.acquire_wakelock()
        device.start_load()
        device.set_fixed_frequency(960.0)
        world.run_for(10.0)
        expected_ops = 4 * 960e6 * 1.0 * 10.0  # cores x Hz x ipc x seconds
        assert world.ops_total == pytest.approx(expected_ops, rel=1e-6)

    def test_trace_time_above_consistent_with_max(self):
        device = build_device(PAPER_FLEETS["Nexus 5"][3])
        device.connect_supply(MonsoonPowerMonitor(3.8))
        world = World(device, dt=0.1, trace_decimation=1)
        world.attach_observer(InvariantSuite())
        device.acquire_wakelock()
        device.start_load()
        world.run_for(60.0)
        peak = world.trace.max("cpu_temp")
        assert world.trace.time_above("cpu_temp", peak + 0.1) == 0.0
        assert world.trace.time_above("cpu_temp", peak - 5.0) > 0.0


class TestSiliconOrderingsSurviveTheStack:
    """The fundamental orderings must hold for arbitrary sampled silicon,
    not just the calibrated fleets."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_leakier_unit_draws_more_power_hot(self, seed):
        from repro.device.fleet import synthetic_fleet

        fleet = synthetic_fleet("Google Pixel", 2, lot_name=f"prop-{seed}")
        a, b = fleet
        if a.profile.leak_factor == b.profile.leak_factor:
            return
        leaky, lean = (
            (a, b) if a.profile.leak_factor > b.profile.leak_factor else (b, a)
        )
        for device in (leaky, lean):
            device.connect_supply(MonsoonPowerMonitor(3.85))
            device.thermal.settle_to(70.0)
            device.acquire_wakelock()
            device.start_load()
            device.set_fixed_frequency(1075.0)
        power_leaky = leaky.step(26.0, 0.1).soc_power_w
        power_lean = lean.step(26.0, 0.1).soc_power_w
        assert power_leaky > power_lean
