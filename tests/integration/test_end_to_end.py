"""End-to-end behaviour of the full stack at test scale."""

import pytest

from repro.core.experiments import fixed_frequency, unconstrained
from repro.core.protocol import Accubench
from repro.device.catalog import device_spec
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor


def monsoon_device(model="Nexus 5", index=0, soak=None):
    device = build_device(PAPER_FLEETS[model][index])
    device.connect_supply(MonsoonPowerMonitor(device.spec.battery.nominal_v))
    if soak is not None:
        device.thermal.settle_to(soak)
    return device


class TestThermalCausality:
    """The paper's causal chain, observed end to end."""

    def test_unconstrained_run_throttles_when_hot(self, fast_config):
        bench = Accubench(fast_config.with_traces())
        device = monsoon_device(soak=70.0)
        result = bench.run_iteration(device, unconstrained())
        # At test scale the short workload may escape throttling, but the
        # warmup burn from a 70 C soak must trip the mitigation loop.
        assert (result.trace.column("throttle_steps") > 0).any()

    def test_fixed_frequency_never_throttles(self, fast_config):
        bench = Accubench(fast_config.with_traces())
        device = monsoon_device(soak=40.0)
        result = bench.run_iteration(
            device, fixed_frequency(device_spec("Nexus 5"))
        )
        assert result.time_throttled_s == 0.0

    def test_leaky_bin_runs_hotter_at_fixed_frequency(self, fast_config):
        bench = Accubench(fast_config)
        spec = fixed_frequency(device_spec("Nexus 5"))
        hot = bench.run_iteration(monsoon_device(index=3), spec)
        cool = bench.run_iteration(monsoon_device(index=0), spec)
        assert hot.max_cpu_temp_c > cool.max_cpu_temp_c

    def test_leaky_bin_uses_more_energy_for_same_work(self, fast_config):
        bench = Accubench(fast_config)
        spec = fixed_frequency(device_spec("Nexus 5"))
        bin0 = bench.run_iteration(monsoon_device(index=0), spec)
        bin3 = bench.run_iteration(monsoon_device(index=3), spec)
        # Same work (within noise)...
        assert bin3.iterations_completed == pytest.approx(
            bin0.iterations_completed, rel=0.05
        )
        # ...more energy.
        assert bin3.energy_j > bin0.energy_j * 1.05

    def test_hot_soak_reduces_performance(self, fast_config):
        bench = Accubench(fast_config)
        # Same unit, same protocol; one copy soaked hot.  The cooldown
        # phase waits for the CPU sensor but the chassis stays warmer, so
        # the hot-soaked run must not beat the cold run.
        cold = bench.run_iteration(monsoon_device(soak=26.0), unconstrained())
        hot = bench.run_iteration(monsoon_device(soak=75.0), unconstrained())
        assert hot.iterations_completed <= cold.iterations_completed * 1.02


class TestEnergyAccounting:
    def test_energy_consistent_with_mean_power(self, fast_config):
        bench = Accubench(fast_config)
        result = bench.run_iteration(monsoon_device(), unconstrained())
        assert result.energy_j == pytest.approx(
            result.mean_power_w * fast_config.workload_s, rel=0.01
        )

    def test_performance_consistent_with_mean_frequency(self, fast_config):
        # Ops are linear in frequency, so score / mean-frequency should be
        # nearly constant across two different bins (paper Section IV-B).
        bench = Accubench(fast_config)
        results = [
            bench.run_iteration(monsoon_device(index=i, soak=70.0), unconstrained())
            for i in (0, 3)
        ]
        ratios = [
            r.iterations_completed / r.mean_freq_mhz for r in results
        ]
        assert ratios[0] == pytest.approx(ratios[1], rel=0.06)


class TestBigLittle:
    def test_nexus6p_runs_both_clusters(self, fast_config):
        bench = Accubench(fast_config.with_traces())
        device = build_device(PAPER_FLEETS["Nexus 6P"][0])
        device.connect_supply(MonsoonPowerMonitor(3.82))
        result = bench.run_iteration(device, unconstrained())
        assert result.iterations_completed > 0
        # Both clusters contribute ops: an A57-only run of the same length
        # would retire fewer ops than observed.
        a57_only = 4 * 1958e6 * 1.15 * fast_config.workload_s / 2.649e9
        assert result.iterations_completed > a57_only * 0.9
