"""Scaled-down checks of the paper's headline results.

The benchmark suite reruns these at full protocol length; here a reduced
(but not trivial) configuration verifies the *direction and rough size* of
every headline effect quickly enough for CI.
"""

import pytest

from repro.core.config import AccubenchConfig
from repro.core.experiments import fixed_frequency, unconstrained
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.device.catalog import device_spec
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor


@pytest.fixture(scope="module")
def runner() -> CampaignRunner:
    # Mid-scale: long enough for real throttling, short enough for tests.
    config = AccubenchConfig(
        warmup_s=90.0,
        workload_s=150.0,
        cooldown_target_c=38.0,
        cooldown_timeout_s=2400.0,
        iterations=2,
        dt=0.25,
        trace_decimation=4,
    )
    return CampaignRunner(CampaignConfig(accubench=config, use_thermabox=False))


@pytest.fixture(scope="module")
def nexus5_results(runner):
    perf = runner.run_fleet("Nexus 5", unconstrained())
    energy = runner.run_fleet("Nexus 5", fixed_frequency(device_spec("Nexus 5")))
    return perf, energy


class TestNexus5Headlines:
    def test_bin0_wins_performance(self, nexus5_results):
        perf, _ = nexus5_results
        assert perf.best_serial == "bin-0"
        assert perf.worst_serial == "bin-3"

    def test_bin0_wins_energy_despite_highest_voltage(self, nexus5_results):
        # The paper's counterintuitive headline (Section IV-A1).
        _, energy = nexus5_results
        assert energy.most_efficient_serial == "bin-0"

    def test_performance_spread_magnitude(self, nexus5_results):
        perf, _ = nexus5_results
        assert 0.05 <= perf.performance_variation <= 0.30

    def test_energy_spread_magnitude(self, nexus5_results):
        _, energy = nexus5_results
        assert 0.10 <= energy.energy_variation <= 0.30

    def test_fixed_frequency_work_equal_across_bins(self, nexus5_results):
        _, energy = nexus5_results
        perfs = list(energy.performances().values())
        assert (max(perfs) - min(perfs)) / min(perfs) < 0.03

    def test_ordering_monotone_with_bin(self, nexus5_results):
        perf, _ = nexus5_results
        scores = [perf.by_serial(f"bin-{i}").performance for i in range(4)]
        assert scores == sorted(scores, reverse=True)


class TestG5VoltageHeadline:
    def test_nominal_voltage_throttles_about_20_percent(self, runner):
        def run_at(voltage):
            device = build_device(PAPER_FLEETS["LG G5"][2])
            return runner.run_device(
                device, unconstrained(), iterations=1, supply_voltage=voltage
            ).performance

        slow = run_at(3.85)
        fast = run_at(4.40)
        deficit = (fast - slow) / fast
        assert 0.10 <= deficit <= 0.30
