"""Exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.SimulationError,
            errors.CalibrationError,
            errors.InstrumentError,
            errors.ProtocolError,
            errors.AnalysisError,
            errors.UnknownModelError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_unknown_model_is_configuration_error(self):
        assert issubclass(errors.UnknownModelError, errors.ConfigurationError)


class TestUnknownModelError:
    def test_message_lists_known(self):
        err = errors.UnknownModelError("device", "iPhone", ("Nexus 5", "LG G5"))
        assert "iPhone" in str(err)
        assert "Nexus 5" in str(err)
        assert "LG G5" in str(err)

    def test_fields(self):
        err = errors.UnknownModelError("SoC", "SD-999", ("SD-800",))
        assert err.kind == "SoC"
        assert err.name == "SD-999"
        assert err.known == ("SD-800",)
