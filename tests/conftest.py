"""Shared fixtures: fast protocol configs and prebuilt devices.

Tests scale the paper's durations down hard (seconds, not minutes): the
physics is qualitatively identical, and the full-length campaign lives in
the benchmark suite, not here.
"""

from __future__ import annotations

import pytest

from repro.core.config import AccubenchConfig
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor


@pytest.fixture
def fast_config() -> AccubenchConfig:
    """A seconds-scale protocol config for unit/integration tests."""
    return AccubenchConfig(
        warmup_s=20.0,
        workload_s=30.0,
        cooldown_target_c=40.0,
        cooldown_poll_s=5.0,
        cooldown_timeout_s=2400.0,
        iterations=2,
        dt=0.2,
        trace_decimation=2,
    )


@pytest.fixture
def fast_campaign(fast_config: AccubenchConfig) -> CampaignConfig:
    """Campaign config wrapping the fast protocol, chamber disabled for
    speed (chamber-specific tests opt back in)."""
    return CampaignConfig(accubench=fast_config, use_thermabox=False)


@pytest.fixture
def fast_runner(fast_campaign: CampaignConfig) -> CampaignRunner:
    """A runner over the fast campaign config."""
    return CampaignRunner(fast_campaign)


@pytest.fixture
def nexus5_bin0():
    """A Nexus 5 bin-0 unit powered from a Monsoon at nominal voltage."""
    device = build_device(PAPER_FLEETS["Nexus 5"][0])
    device.connect_supply(MonsoonPowerMonitor(device.spec.battery.nominal_v))
    return device


@pytest.fixture
def nexus5_bin3():
    """A Nexus 5 bin-3 unit powered from a Monsoon at nominal voltage."""
    device = build_device(PAPER_FLEETS["Nexus 5"][3])
    device.connect_supply(MonsoonPowerMonitor(device.spec.battery.nominal_v))
    return device
