"""JSONL export of engine event streams."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.events import read_events_jsonl, write_events_jsonl
from repro.sim.events import EventLog


def sample_log() -> EventLog:
    log = EventLog()
    log.log(0.0, "phase", name="warmup")
    log.log(42.5, "throttle-step", steps=1)
    log.log(90.0, "core-offline", online=3, cluster="krait")
    return log


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        log = sample_log()
        path = tmp_path / "events" / "run.jsonl"
        written = write_events_jsonl(log, path)
        assert written == 3
        assert read_events_jsonl(path) == list(log)

    def test_one_document_per_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_events_jsonl(sample_log(), path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)
            assert record["format"] == "repro-events-v1"

    def test_empty_log(self, tmp_path):
        path = tmp_path / "run.jsonl"
        assert write_events_jsonl(EventLog(), path) == 0
        assert read_events_jsonl(path) == []


class TestErrors:
    def test_corrupt_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("{broken\n")
        with pytest.raises(ObservabilityError):
            read_events_jsonl(path)

    def test_unknown_format(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"format": "not-events", "kind": "x", "time_s": 0}\n')
        with pytest.raises(ObservabilityError):
            read_events_jsonl(path)
