"""TelemetryServer: lifecycle, routes, and scraping a live run."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import parse_prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressBus, TaskProgress
from repro.obs.serve import TelemetryServer


def fetch(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.read().decode()


def registry_with_data() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("engine.steps").inc(480)
    registry.gauge("crowd.users_per_sec").set(55.5)
    with registry.span("crowd.stream"):
        with registry.span("crowd.cohort"):
            pass
    return registry


class TestLifecycle:
    def test_start_scrape_close(self):
        server = TelemetryServer(registry=registry_with_data())
        server.start()
        try:
            url = server.url
            assert fetch(f"{url}/healthz") == "ok\n"
        finally:
            server.close()
        with pytest.raises((urllib.error.URLError, OSError)):
            fetch(f"{url}/healthz")

    def test_close_is_idempotent(self):
        server = TelemetryServer()
        server.start()
        server.close()
        server.close()

    def test_double_start_rejected(self):
        with TelemetryServer() as server:
            with pytest.raises(ObservabilityError):
                server.start()

    def test_port_unavailable_before_start(self):
        server = TelemetryServer()
        with pytest.raises(ObservabilityError):
            server.port

    def test_context_manager_binds_ephemeral_port(self):
        with TelemetryServer() as server:
            assert server.port > 0
            assert str(server.port) in server.url


class TestRoutes:
    def test_metrics_answers_parseable_prometheus(self):
        with TelemetryServer(registry=registry_with_data()) as server:
            body = fetch(f"{server.url}/metrics")
        parsed = parse_prometheus_text(body)
        values = {s["name"]: s["value"] for s in parsed["samples"]}
        assert values["repro_engine_steps"] == 480.0
        assert values["repro_crowd_users_per_sec"] == 55.5

    def test_status_without_bus_is_idle(self):
        with TelemetryServer() as server:
            status = json.loads(fetch(f"{server.url}/status"))
        assert status["state"] == "idle"
        assert status["format"] == "repro-status-v1"

    def test_status_reflects_the_bus(self):
        bus = ProgressBus()
        bus.publish(users_done=12)
        with TelemetryServer(bus=bus) as server:
            status = json.loads(fetch(f"{server.url}/status"))
        assert status["campaign"]["users_done"] == 12

    def test_spans_answers_the_tree(self):
        with TelemetryServer(registry=registry_with_data()) as server:
            document = json.loads(fetch(f"{server.url}/spans"))
        assert document["format"] == "repro-spans-v1"
        (root,) = document["tree"]
        assert root["name"] == "crowd.stream"
        assert root["children"][0]["name"] == "crowd.cohort"

    def test_unknown_route_is_404(self):
        with TelemetryServer() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(f"{server.url}/nope")
            assert excinfo.value.code == 404


class TestConcurrentScrapes:
    def test_scrapes_during_a_running_publisher(self):
        """Progress advances between scrapes while a 'run' publishes."""
        registry = MetricsRegistry()
        bus = ProgressBus()
        stop = threading.Event()

        def run() -> None:
            i = 0
            while not stop.is_set():
                i += 1
                registry.counter("engine.steps").inc(10)
                bus(
                    TaskProgress(
                        index=i,
                        completed=i,
                        total=1_000_000,
                        model="Nexus 5",
                        serial=f"N5-{i}",
                        workload="CROWD",
                        wall_s=0.001,
                    )
                )

        publisher = threading.Thread(target=run, daemon=True)
        with TelemetryServer(registry=registry, bus=bus) as server:
            publisher.start()
            try:
                first = json.loads(fetch(f"{server.url}/status"))
                results = []
                errors = []

                def scrape() -> None:
                    try:
                        parse_prometheus_text(fetch(f"{server.url}/metrics"))
                        results.append(
                            json.loads(fetch(f"{server.url}/status"))
                        )
                    except Exception as error:  # pragma: no cover
                        errors.append(error)

                scrapers = [
                    threading.Thread(target=scrape) for _ in range(8)
                ]
                for thread in scrapers:
                    thread.start()
                for thread in scrapers:
                    thread.join()
            finally:
                stop.set()
                publisher.join(timeout=5.0)
        assert not errors
        assert len(results) == 8
        last = max(results, key=lambda s: s["tasks"]["completed"])
        assert last["tasks"]["completed"] > first["tasks"]["completed"]
        assert all(s["state"] == "running" for s in results)
