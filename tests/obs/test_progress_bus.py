"""ProgressBus: thread-safe live run state fed at shard boundaries."""

import threading

import pytest

from repro.obs.progress import (
    STATUS_FORMAT,
    ProgressBus,
    TaskProgress,
    chain_progress,
    rss_mb,
)


def event(index: int, completed: int, total: int = 4) -> TaskProgress:
    return TaskProgress(
        index=index,
        completed=completed,
        total=total,
        model="Nexus 5",
        serial=f"N5-{index:03d}",
        workload="UNCONSTRAINED",
        wall_s=0.25,
        steps_per_sec=1000.0,
    )


class TestBusStates:
    def test_idle_until_first_event(self):
        bus = ProgressBus()
        assert bus.status()["state"] == "idle"
        assert bus.updates == 0

    def test_running_then_complete(self):
        bus = ProgressBus()
        bus(event(0, 1))
        assert bus.status()["state"] == "running"
        bus(event(1, 2))
        bus(event(2, 3))
        bus(event(3, 4))
        assert bus.status()["state"] == "complete"

    def test_status_is_self_describing(self):
        bus = ProgressBus()
        bus(event(0, 1))
        status = bus.status()
        assert status["format"] == STATUS_FORMAT
        assert status["tasks"] == {
            "completed": 1,
            "total": 4,
            "per_sec": pytest.approx(status["tasks"]["per_sec"]),
        }


class TestShardWindow:
    def test_shards_carry_task_fields(self):
        bus = ProgressBus()
        bus(event(2, 1))
        (shard,) = bus.status()["shards"]
        assert shard["shard"] == "Nexus 5/N5-002"
        assert shard["steps_per_sec"] == 1000.0
        assert shard["wall_s"] == 0.25

    def test_window_evicts_oldest(self):
        bus = ProgressBus(recent_shards=2)
        for i in range(5):
            bus(event(i, i + 1, total=5))
        shards = [s["serial"] for s in bus.status()["shards"]]
        assert shards == ["N5-003", "N5-004"]

    def test_repeat_shard_moves_to_recent_end(self):
        bus = ProgressBus(recent_shards=2)
        bus(event(0, 1))
        bus(event(1, 2))
        bus(event(0, 3))
        shards = [s["serial"] for s in bus.status()["shards"]]
        assert shards == ["N5-001", "N5-000"]

    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            ProgressBus(recent_shards=0)


class TestCampaignAndWarnings:
    def test_publish_merges_campaign_fields(self):
        bus = ProgressBus()
        bus.publish(users_done=100, users_per_sec=50.0)
        bus.publish(users_done=200)
        campaign = bus.status()["campaign"]
        assert campaign == {"users_done": 200, "users_per_sec": 50.0}

    def test_warnings_accumulate_as_copies(self):
        bus = ProgressBus()
        warning = {"rule": "stuck_shard", "message": "no progress"}
        bus.warn(warning)
        warning["message"] = "mutated"
        assert bus.warnings[0]["message"] == "no progress"
        assert bus.status()["warnings"][0]["message"] == "no progress"

    def test_status_snapshot_is_detached(self):
        bus = ProgressBus()
        bus.publish(cursor=1)
        status = bus.status()
        status["campaign"]["cursor"] = 999
        assert bus.status()["campaign"]["cursor"] == 1


class TestConcurrency:
    def test_parallel_publishers_and_readers(self):
        bus = ProgressBus()
        errors = []

        def publish(worker: int) -> None:
            try:
                for i in range(200):
                    bus(event(worker * 200 + i, i + 1, total=200))
                    bus.publish(users_done=i)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def read() -> None:
            try:
                for _ in range(200):
                    status = bus.status()
                    assert status["format"] == STATUS_FORMAT
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=publish, args=(w,)) for w in range(3)
        ] + [threading.Thread(target=read) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert bus.updates == 3 * 200 * 2


class TestChainProgress:
    def test_none_entries_are_skipped(self):
        assert chain_progress(None, None) is None

    def test_single_callback_passes_through(self):
        def callback(progress):
            pass

        assert chain_progress(None, callback) is callback

    def test_fanout_preserves_order(self):
        seen = []
        chained = chain_progress(
            lambda p: seen.append(("a", p.index)),
            None,
            lambda p: seen.append(("b", p.index)),
        )
        chained(event(7, 1))
        assert seen == [("a", 7), ("b", 7)]


def test_rss_mb_reports_a_positive_number():
    value = rss_mb()
    assert value is None or value > 0
