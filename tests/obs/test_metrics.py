"""Metrics registry: counters, gauges, histograms, spans, merging."""

import pickle

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    METRICS_FORMAT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
    use_registry,
)
from repro.obs.spans import NULL_SPAN, Span


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        counter.add(3)
        assert counter.value == 6.5

    def test_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            Counter().inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge()
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_buckets_by_upper_edge_inclusive(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]  # <=1, <=10, overflow
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(106.5)
        assert histogram.mean == pytest.approx(106.5 / 4)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=())
        with pytest.raises(ObservabilityError):
            Histogram(bounds=(2.0, 1.0))


class TestDisabledRegistry:
    def test_returns_shared_noop_metrics(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_COUNTER
        assert registry.gauge("b") is NULL_GAUGE
        assert registry.histogram("c") is NULL_HISTOGRAM
        assert registry.span("d") is NULL_SPAN

    def test_noop_metrics_keep_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc(5)
        registry.gauge("b").set(3)
        registry.histogram("c").observe(1.0)
        with registry.span("d"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["spans"] == []
        assert NULL_COUNTER.value == 0.0
        assert NULL_HISTOGRAM.count == 0

    def test_default_registry_disabled_out_of_the_box(self):
        assert default_registry().enabled is False


class TestRegistry:
    def test_same_name_same_metric(self):
        registry = MetricsRegistry()
        registry.counter("engine.steps").inc(3)
        registry.counter("engine.steps").inc(4)
        assert registry.snapshot()["counters"]["engine.steps"] == 7.0

    def test_clear_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        with registry.span("s"):
            pass
        registry.clear()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["spans"] == []

    def test_snapshot_is_json_shaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["format"] == METRICS_FORMAT
        assert snapshot["histograms"]["h"] == {
            "bounds": [1.0],
            "counts": [1, 0],
            "sum": 0.5,
            "count": 1,
        }


class TestSpans:
    def test_span_records_wall_and_sim_extents(self):
        registry = MetricsRegistry()
        ticks = iter([10.0, 35.0])
        with registry.span("phase.warmup", clock=lambda: next(ticks)) as span:
            pass
        assert span.wall_s >= 0.0
        assert span.sim_start_s == 10.0
        assert span.sim_stop_s == 35.0
        assert span.sim_s == 25.0
        assert registry.spans == [span]

    def test_nested_span_gets_parent(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner") as inner:
                pass
        assert inner.parent == "outer"
        assert [span.name for span in registry.spans] == ["inner", "outer"]

    def test_detail_is_kept(self):
        registry = MetricsRegistry()
        with registry.span("run_device", serial="bin-2") as span:
            pass
        assert span.detail == {"serial": "bin-2"}

    def test_span_closes_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("doomed"):
                raise RuntimeError("boom")
        (span,) = registry.spans
        assert span.wall_stop_s is not None

    def test_span_dict_round_trip(self):
        span = Span(
            name="phase.cooldown",
            wall_start_s=1.0,
            wall_stop_s=3.5,
            sim_start_s=0.0,
            sim_stop_s=600.0,
            parent="run_device",
            detail={"serial": "bin-0"},
        )
        assert Span.from_dict(span.to_dict()) == span

    def test_span_from_dict_missing_field(self):
        with pytest.raises(ObservabilityError):
            Span.from_dict({"name": "x"})


class TestDefaultRegistry:
    def test_use_registry_scopes_and_restores(self):
        outer = default_registry()
        scoped = MetricsRegistry(enabled=True)
        with use_registry(scoped) as active:
            assert active is scoped
            assert default_registry() is scoped
        assert default_registry() is outer

    def test_set_default_returns_previous(self):
        original = default_registry()
        replacement = MetricsRegistry(enabled=True)
        previous = set_default_registry(replacement)
        try:
            assert previous is original
            assert default_registry() is replacement
        finally:
            set_default_registry(original)


class TestMerge:
    def build_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("engine.steps").inc(100)
        registry.gauge("depth").set(2.0)
        registry.histogram("task.wall_s", bounds=(1.0, 5.0)).observe(0.4)
        with registry.span("run_device"):
            pass
        return registry.snapshot()

    def test_counters_add_spans_extend(self):
        parent = MetricsRegistry()
        parent.counter("engine.steps").inc(11)
        parent.merge_snapshot(self.build_snapshot())
        parent.merge_snapshot(self.build_snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["engine.steps"] == 211.0
        assert snapshot["gauges"]["depth"] == 2.0
        assert snapshot["histograms"]["task.wall_s"]["count"] == 2
        assert len(snapshot["spans"]) == 2

    def test_histogram_bound_mismatch_rejected(self):
        parent = MetricsRegistry()
        parent.histogram("task.wall_s", bounds=(9.0,)).observe(1.0)
        with pytest.raises(ObservabilityError):
            parent.merge_snapshot(self.build_snapshot())

    def test_wrong_format_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().merge_snapshot({"format": "something-else"})

    def test_merge_into_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.merge_snapshot(self.build_snapshot())
        assert registry.snapshot()["counters"] == {}

    def test_snapshot_survives_pickle(self):
        # Worker payloads carry snapshots across process boundaries.
        snapshot = self.build_snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
