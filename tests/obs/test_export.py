"""Metrics exporters: JSON document, Prometheus text, human summary."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import (
    aggregate_spans,
    as_document,
    format_summary,
    prometheus_text,
    read_metrics,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("engine.steps").inc(2904)
    registry.counter("engine.fast_forward_windows").inc(7)
    registry.gauge("jobs").set(4.0)
    histogram = registry.histogram("task.wall_s", bounds=(1.0, 10.0))
    histogram.observe(0.5)
    histogram.observe(3.0)
    ticks = iter([0.0, 60.0, 60.0, 360.0])
    clock = lambda: next(ticks)  # noqa: E731
    with registry.span("phase.warmup", clock=clock):
        pass
    with registry.span("phase.cooldown", clock=clock):
        pass
    return registry


class TestDocumentRoundTrip:
    def test_write_then_read(self, tmp_path):
        registry = populated_registry()
        path = write_metrics(registry, tmp_path / "metrics" / "m.json")
        assert path.exists()
        document = read_metrics(path)
        assert document == registry.snapshot()

    def test_read_rejects_non_metrics_json(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ObservabilityError):
            read_metrics(path)

    def test_read_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{nope")
        with pytest.raises(ObservabilityError):
            read_metrics(path)

    def test_as_document_accepts_registry_or_dict(self):
        registry = populated_registry()
        snapshot = registry.snapshot()
        assert as_document(registry) == snapshot
        assert as_document(snapshot) == snapshot
        with pytest.raises(ObservabilityError):
            as_document({"format": "bogus"})


class TestAggregateSpans:
    def test_totals_by_name(self):
        totals = aggregate_spans(populated_registry())
        assert totals["phase.warmup"]["count"] == 1
        assert totals["phase.warmup"]["sim_s"] == pytest.approx(60.0)
        assert totals["phase.cooldown"]["sim_s"] == pytest.approx(300.0)


class TestPrometheus:
    def test_counters_gauges_histograms_emitted(self):
        text = prometheus_text(populated_registry())
        assert "# TYPE repro_engine_steps counter" in text
        assert "repro_engine_steps 2904" in text
        assert "# TYPE repro_jobs gauge" in text
        assert 'repro_task_wall_s_bucket{le="1"} 1' in text
        assert 'repro_task_wall_s_bucket{le="10"} 2' in text
        assert 'repro_task_wall_s_bucket{le="+Inf"} 2' in text
        assert "repro_task_wall_s_sum 3.5" in text
        assert 'repro_span_wall_seconds_count{span="phase.warmup"} 1' in text

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("weird-name.with chars").inc()
        text = prometheus_text(registry)
        assert "repro_weird_name_with_chars 1" in text


class TestSummary:
    def test_sections_render(self):
        text = format_summary(populated_registry())
        assert "counters" in text
        assert "engine.steps" in text
        assert "task.wall_s: n=2" in text
        assert "phase.cooldown" in text
        assert "sim/wall" in text

    def test_empty_document(self):
        assert format_summary(MetricsRegistry()) == "no metrics recorded\n"
