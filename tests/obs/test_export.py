"""Metrics exporters: JSON document, Prometheus text, human summary."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import (
    aggregate_spans,
    as_document,
    format_span_tree,
    format_summary,
    parse_prometheus_text,
    prometheus_text,
    read_metrics,
    span_tree,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("engine.steps").inc(2904)
    registry.counter("engine.fast_forward_windows").inc(7)
    registry.gauge("jobs").set(4.0)
    histogram = registry.histogram("task.wall_s", bounds=(1.0, 10.0))
    histogram.observe(0.5)
    histogram.observe(3.0)
    ticks = iter([0.0, 60.0, 60.0, 360.0])
    clock = lambda: next(ticks)  # noqa: E731
    with registry.span("phase.warmup", clock=clock):
        pass
    with registry.span("phase.cooldown", clock=clock):
        pass
    return registry


class TestDocumentRoundTrip:
    def test_write_then_read(self, tmp_path):
        registry = populated_registry()
        path = write_metrics(registry, tmp_path / "metrics" / "m.json")
        assert path.exists()
        document = read_metrics(path)
        assert document == registry.snapshot()

    def test_read_rejects_non_metrics_json(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ObservabilityError):
            read_metrics(path)

    def test_read_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{nope")
        with pytest.raises(ObservabilityError):
            read_metrics(path)

    def test_as_document_accepts_registry_or_dict(self):
        registry = populated_registry()
        snapshot = registry.snapshot()
        assert as_document(registry) == snapshot
        assert as_document(snapshot) == snapshot
        with pytest.raises(ObservabilityError):
            as_document({"format": "bogus"})


class TestAggregateSpans:
    def test_totals_by_name(self):
        totals = aggregate_spans(populated_registry())
        assert totals["phase.warmup"]["count"] == 1
        assert totals["phase.warmup"]["sim_s"] == pytest.approx(60.0)
        assert totals["phase.cooldown"]["sim_s"] == pytest.approx(300.0)


class TestPrometheus:
    def test_counters_gauges_histograms_emitted(self):
        text = prometheus_text(populated_registry())
        assert "# TYPE repro_engine_steps counter" in text
        assert "repro_engine_steps 2904" in text
        assert "# TYPE repro_jobs gauge" in text
        assert 'repro_task_wall_s_bucket{le="1"} 1' in text
        assert 'repro_task_wall_s_bucket{le="10"} 2' in text
        assert 'repro_task_wall_s_bucket{le="+Inf"} 2' in text
        assert "repro_task_wall_s_sum 3.5" in text
        assert 'repro_span_wall_seconds_count{span="phase.warmup"} 1' in text

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("weird-name.with chars").inc()
        text = prometheus_text(registry)
        assert "repro_weird_name_with_chars 1" in text

    def test_help_lines_emitted(self):
        text = prometheus_text(populated_registry())
        assert "# HELP repro_engine_steps" in text

    def test_histogram_buckets_are_cumulative_with_overflow(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t", bounds=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(3.0)
        histogram.observe(42.0)  # lands in the overflow bucket
        text = prometheus_text(registry)
        assert 'repro_t_bucket{le="1"} 1' in text
        assert 'repro_t_bucket{le="10"} 2' in text
        assert 'repro_t_bucket{le="+Inf"} 3' in text
        assert "repro_t_count 3" in text

    def test_values_keep_full_precision(self):
        registry = MetricsRegistry()
        registry.counter("big").inc(123456789.5)
        text = prometheus_text(registry)
        assert "repro_big 123456789.5" in text


class TestPrometheusRoundTrip:
    def test_reference_parser_round_trips_the_exposition(self):
        text = prometheus_text(populated_registry())
        parsed = parse_prometheus_text(text)
        assert parsed["types"]["repro_engine_steps"] == "counter"
        assert parsed["types"]["repro_jobs"] == "gauge"
        assert parsed["types"]["repro_task_wall_s"] == "histogram"
        by_name = {}
        for sample in parsed["samples"]:
            by_name.setdefault(sample["name"], []).append(sample)
        assert by_name["repro_engine_steps"][0]["value"] == 2904.0
        buckets = {
            s["labels"]["le"]: s["value"]
            for s in by_name["repro_task_wall_s_bucket"]
        }
        # Cumulative, terminated by +Inf == _count.
        assert buckets == {"1": 1.0, "10": 2.0, "+Inf": 2.0}
        assert by_name["repro_task_wall_s_count"][0]["value"] == 2.0
        assert by_name["repro_task_wall_s_sum"][0]["value"] == pytest.approx(3.5)

    def test_full_precision_survives_the_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("big").inc(123456789.5)
        registry.gauge("rate").set(1234.56789)
        parsed = parse_prometheus_text(prometheus_text(registry))
        values = {s["name"]: s["value"] for s in parsed["samples"]}
        assert values["repro_big"] == 123456789.5
        assert values["repro_rate"] == 1234.56789

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus_text("this is not prometheus\n")

    def test_parser_rejects_duplicate_type(self):
        text = "# TYPE a counter\na 1\n# TYPE a gauge\na 2\n"
        with pytest.raises(ObservabilityError):
            parse_prometheus_text(text)


class TestSpanTree:
    def nested_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        with registry.span("campaign"):
            with registry.span("phase.warmup"):
                pass
            with registry.span("phase.workload"):
                pass
            with registry.span("phase.warmup"):
                pass
        return registry

    def test_tree_nests_by_parent(self):
        tree = span_tree(self.nested_registry())
        assert len(tree) == 1
        root = tree[0]
        assert root["name"] == "campaign"
        children = {child["name"]: child for child in root["children"]}
        assert children["phase.warmup"]["count"] == 2
        assert children["phase.workload"]["count"] == 1

    def test_orphaned_spans_surface_as_roots(self):
        # Worker-merged spans can carry parents never seen locally; their
        # subtrees must still appear instead of silently vanishing.
        registry = MetricsRegistry()
        with registry.span("phase.workload"):
            pass
        snapshot = registry.snapshot()
        for span in snapshot["spans"]:
            span["parent"] = "never-recorded"
        roots = [node["name"] for node in span_tree(snapshot)]
        assert "phase.workload" in roots

    def test_format_renders_indented_table(self):
        text = format_span_tree(self.nested_registry())
        assert "campaign" in text
        assert "  phase.warmup" in text

    def test_empty_tree(self):
        assert span_tree(MetricsRegistry()) == []
        assert "no spans" in format_span_tree(MetricsRegistry())


class TestSummary:
    def test_sections_render(self):
        text = format_summary(populated_registry())
        assert "counters" in text
        assert "engine.steps" in text
        assert "task.wall_s: n=2" in text
        assert "phase.cooldown" in text
        assert "sim/wall" in text

    def test_empty_document(self):
        assert format_summary(MetricsRegistry()) == "no metrics recorded\n"
