"""Watchdog rules over synthetic status-snapshot streams."""

import io

import pytest

from repro.errors import ObservabilityError
from repro.obs.progress import ProgressBus
from repro.obs.serve import TelemetryServer
from repro.obs.watch import (
    DropRateSpikeRule,
    StuckShardRule,
    ThroughputRegressionRule,
    Watchdog,
    default_watchdog,
    fetch_status,
    format_status_line,
    watch_url,
)


def status(
    state: str = "running",
    idle_s: float = 0.0,
    users_per_sec: float = None,
    users_done: int = None,
    dropped_total: int = None,
    wall_s: float = 10.0,
):
    campaign = {}
    if users_per_sec is not None:
        campaign["users_per_sec"] = users_per_sec
    if users_done is not None:
        campaign["users_done"] = users_done
    if dropped_total is not None:
        campaign["dropped_total"] = dropped_total
    return {
        "format": "repro-status-v1",
        "state": state,
        "wall_s": wall_s,
        "idle_s": idle_s,
        "tasks": {"completed": 3, "total": 10, "per_sec": 0.5},
        "campaign": campaign,
        "warnings": [],
    }


class TestStuckShard:
    def test_fires_past_the_timeout(self):
        rule = StuckShardRule(timeout_s=60.0)
        assert rule.evaluate(status(idle_s=30.0)) is None
        warning = rule.evaluate(status(idle_s=90.0))
        assert warning["rule"] == "stuck_shard"
        assert warning["data"]["idle_s"] == 90.0

    def test_edge_triggered_until_cleared(self):
        rule = StuckShardRule(timeout_s=60.0)
        assert rule.evaluate(status(idle_s=90.0)) is not None
        assert rule.evaluate(status(idle_s=120.0)) is None  # still stuck
        assert rule.evaluate(status(idle_s=1.0)) is None  # cleared
        assert rule.evaluate(status(idle_s=95.0)) is not None  # re-armed

    def test_silent_when_not_running(self):
        rule = StuckShardRule(timeout_s=60.0)
        assert rule.evaluate(status(state="complete", idle_s=900.0)) is None

    def test_rejects_bad_timeout(self):
        with pytest.raises(ObservabilityError):
            StuckShardRule(timeout_s=0.0)


class TestThroughputRegression:
    def test_fires_on_a_collapse_after_the_window_fills(self):
        rule = ThroughputRegressionRule(window=4, factor=0.5)
        for _ in range(4):
            assert rule.evaluate(status(users_per_sec=100.0)) is None
        warning = rule.evaluate(status(users_per_sec=10.0))
        assert warning["rule"] == "throughput_regression"
        assert warning["data"]["rolling_median"] == 100.0

    def test_tolerates_noise_above_the_factor(self):
        rule = ThroughputRegressionRule(window=4, factor=0.5)
        for rate in (100.0, 90.0, 110.0, 95.0, 80.0, 60.0):
            assert rule.evaluate(status(users_per_sec=rate)) is None

    def test_falls_back_to_task_rate(self):
        rule = ThroughputRegressionRule(window=3, factor=0.5)
        for _ in range(3):
            rule.evaluate(status())  # tasks.per_sec == 0.5
        document = status()
        document["tasks"]["per_sec"] = 0.01
        assert rule.evaluate(document) is not None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ObservabilityError):
            ThroughputRegressionRule(window=2)
        with pytest.raises(ObservabilityError):
            ThroughputRegressionRule(factor=1.5)


class TestDropRateSpike:
    def test_fires_over_the_threshold(self):
        rule = DropRateSpikeRule(threshold=0.5, min_users=50)
        warning = rule.evaluate(status(users_done=100, dropped_total=60))
        assert warning["rule"] == "drop_rate_spike"
        assert warning["data"]["drop_rate"] == 0.6

    def test_armed_only_after_min_users(self):
        rule = DropRateSpikeRule(threshold=0.5, min_users=50)
        assert rule.evaluate(status(users_done=10, dropped_total=10)) is None

    def test_healthy_rate_is_silent(self):
        rule = DropRateSpikeRule(threshold=0.5, min_users=50)
        assert rule.evaluate(status(users_done=200, dropped_total=20)) is None

    def test_rejects_bad_threshold(self):
        with pytest.raises(ObservabilityError):
            DropRateSpikeRule(threshold=0.0)


class TestWatchdog:
    def test_collects_warnings_across_rules(self):
        dog = default_watchdog(stuck_timeout_s=60.0, drop_min_users=10)
        assert not dog.triggered
        fresh = dog.observe(
            status(idle_s=90.0, users_done=20, dropped_total=15)
        )
        assert {w["rule"] for w in fresh} == {"stuck_shard", "drop_rate_spike"}
        assert dog.triggered
        assert len(dog.warnings) == 2

    def test_needs_at_least_one_rule(self):
        with pytest.raises(ObservabilityError):
            Watchdog([])


class TestFormatStatusLine:
    def test_renders_the_cursor(self):
        document = status(users_per_sec=55.5, users_done=512)
        document["campaign"]["checkpoint_cohort"] = 2
        document["rss_mb"] = 120.0
        line = format_status_line(document)
        assert "[running]" in line
        assert "3/10 shards" in line
        assert "512 users" in line
        assert "55.5 users/s" in line
        assert "ckpt@2" in line
        assert "rss 120 MiB" in line


class TestWatchUrl:
    def test_tails_a_live_endpoint(self):
        bus = ProgressBus()
        bus.publish(users_done=42, users_per_sec=10.0)
        out = io.StringIO()
        with TelemetryServer(bus=bus) as server:
            document = fetch_status(server.url)
            assert document["campaign"]["users_done"] == 42
            code = watch_url(server.url, once=True, stream=out)
        assert code == 0
        assert "42 users" in out.getvalue()

    def test_unreachable_endpoint_fails_the_first_poll(self):
        out = io.StringIO()
        code = watch_url(
            "http://127.0.0.1:1", interval_s=0.01, once=True, stream=out
        )
        assert code == 1
        assert "error:" in out.getvalue()

    def test_warnings_are_echoed(self):
        bus = ProgressBus()
        bus.warn({"rule": "stuck_shard", "message": "no progress for 300 s"})
        out = io.StringIO()
        with TelemetryServer(bus=bus) as server:
            watch_url(server.url, once=True, stream=out)
        assert "watchdog[stuck_shard]" in out.getvalue()
