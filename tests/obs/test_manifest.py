"""Run manifests: schema, round trip, atomic writes, rendering."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    build_manifest,
    fingerprint_payload,
    format_manifest,
    manifest_path_for,
    read_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry

FINGERPRINT = fingerprint_payload({"config": {"users": 1024}, "seed": 7})


def sample_manifest(**overrides):
    registry = MetricsRegistry()
    registry.counter("crowd.users").inc(1024)
    with registry.span("crowd.stream"):
        pass
    manifest = build_manifest(
        "crowd-stream",
        FINGERPRINT,
        20190324,
        registry=registry,
        status={"state": "complete", "tasks": {"completed": 4, "total": 4}},
        result={"users_simulated": 1024},
        extra={"checkpoint_path": "/tmp/ck.json"},
    )
    manifest.update(overrides)
    return manifest


class TestFingerprint:
    def test_stable_across_key_order(self):
        a = fingerprint_payload({"x": 1, "y": 2})
        b = fingerprint_payload({"y": 2, "x": 1})
        assert a == b
        assert len(a) == 64

    def test_sensitive_to_values(self):
        assert fingerprint_payload({"x": 1}) != fingerprint_payload({"x": 2})


class TestBuildAndValidate:
    def test_build_produces_a_valid_document(self):
        manifest = sample_manifest()
        assert validate_manifest(manifest) is manifest
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["fingerprint"] == FINGERPRINT
        assert manifest["root_seed"] == 20190324
        assert manifest["metrics"]["counters"]["crowd.users"] == 1024
        assert "crowd.stream" in manifest["phase_timings"]
        assert manifest["host"]["python"]
        assert manifest["packages"]["repro"]

    def test_disabled_registry_yields_empty_metrics(self):
        manifest = build_manifest(
            "fleet", FINGERPRINT, 1, registry=MetricsRegistry(enabled=False)
        )
        assert manifest["metrics"] == {"counters": {}, "gauges": {}}
        assert manifest["phase_timings"] == {}

    def test_rejects_wrong_format(self):
        with pytest.raises(ObservabilityError):
            validate_manifest(sample_manifest(format="bogus-v9"))

    def test_rejects_missing_field(self):
        manifest = sample_manifest()
        del manifest["host"]
        with pytest.raises(ObservabilityError):
            validate_manifest(manifest)

    def test_rejects_wrong_type(self):
        with pytest.raises(ObservabilityError):
            validate_manifest(sample_manifest(root_seed="not-an-int"))

    def test_rejects_malformed_fingerprint(self):
        with pytest.raises(ObservabilityError):
            validate_manifest(sample_manifest(fingerprint="abc123"))

    def test_git_may_be_null_but_not_scalar(self):
        validate_manifest(sample_manifest(git=None))
        with pytest.raises(ObservabilityError):
            validate_manifest(sample_manifest(git="deadbeef"))


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        manifest = sample_manifest()
        path = write_manifest(manifest, tmp_path / "runs" / "m.json")
        assert path.exists()
        assert read_manifest(path) == manifest

    def test_write_leaves_no_tmp_file(self, tmp_path):
        write_manifest(sample_manifest(), tmp_path / "m.json")
        assert [p.name for p in tmp_path.iterdir()] == ["m.json"]

    def test_write_refuses_invalid_document(self, tmp_path):
        with pytest.raises(ObservabilityError):
            write_manifest({"format": "bogus"}, tmp_path / "m.json")
        assert not (tmp_path / "m.json").exists()

    def test_read_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{nope")
        with pytest.raises(ObservabilityError):
            read_manifest(path)

    def test_read_rejects_missing_file(self, tmp_path):
        with pytest.raises(ObservabilityError):
            read_manifest(tmp_path / "absent.json")

    def test_document_is_json_serializable(self):
        json.dumps(sample_manifest())


class TestPaths:
    def test_manifest_lives_beside_its_subject(self):
        assert str(manifest_path_for("/runs/ck.json")).endswith(
            "/runs/ck.json.manifest.json"
        )


class TestFormat:
    def test_renders_the_key_facts(self):
        text = format_manifest(sample_manifest())
        assert "crowd-stream run manifest" in text
        assert FINGERPRINT[:16] in text
        assert "20190324" in text
        assert "crowd.stream" in text
        assert "crowd.users" in text

    def test_tolerates_missing_git(self):
        text = format_manifest(sample_manifest(git=None))
        assert "unknown" in text
