"""Whole-study orchestration and persistence."""

import json

import pytest

from repro.core.results import DeviceResult, ExperimentResult, IterationResult
from repro.core.study import Study, run_study
from repro.errors import AnalysisError


def experiment(model, workload, serial_scores):
    devices = []
    for serial, (perf, energy) in serial_scores.items():
        it = IterationResult(
            model=model, serial=serial, workload=workload,
            iterations_completed=perf, energy_j=energy, mean_power_w=1.0,
            mean_freq_mhz=2000.0, max_cpu_temp_c=75.0, cooldown_s=0.0,
            time_throttled_s=0.0,
        )
        devices.append(
            DeviceResult(model=model, serial=serial, workload=workload,
                         iterations=(it,))
        )
    return ExperimentResult(model=model, workload=workload, devices=tuple(devices))


@pytest.fixture
def study() -> Study:
    return Study(
        results={
            "Nexus 5": (
                experiment("Nexus 5", "UNCONSTRAINED",
                           {"bin-0": (900.0, 470.0), "bin-3": (780.0, 585.0)}),
                experiment("Nexus 5", "FIXED-FREQUENCY",
                           {"bin-0": (430.0, 470.0), "bin-3": (430.0, 585.0)}),
            ),
            "Nexus 6": (
                experiment("Nexus 6", "UNCONSTRAINED",
                           {"n6-a": (740.0, 750.0), "n6-b": (735.0, 760.0)}),
                experiment("Nexus 6", "FIXED-FREQUENCY",
                           {"n6-a": (430.0, 750.0), "n6-b": (430.0, 760.0)}),
            ),
        }
    )


class TestStudyApi:
    def test_models(self, study):
        assert study.models == ("Nexus 5", "Nexus 6")

    def test_accessors(self, study):
        assert study.performance("Nexus 5").workload == "UNCONSTRAINED"
        assert study.energy("Nexus 5").workload == "FIXED-FREQUENCY"

    def test_unknown_model_rejected(self, study):
        with pytest.raises(AnalysisError):
            study.performance("Pixel 9")

    def test_empty_study_rejected(self):
        with pytest.raises(AnalysisError):
            Study(results={})

    def test_table2_rows(self, study):
        rows = study.table2_rows()
        soc, count, perf, energy = rows["Nexus 5"]
        assert soc == "SD-800"
        assert count == 2
        assert perf == pytest.approx((900.0 - 780.0) / 780.0)
        assert energy == pytest.approx((585.0 - 470.0) / 585.0)

    def test_efficiency_points_ordered(self, study):
        points = study.efficiency_points()
        assert [p.soc for p in points] == ["SD-800", "SD-805"]


class TestPersistence:
    def test_round_trip(self, study, tmp_path):
        study.save(tmp_path / "study")
        restored = Study.load(tmp_path / "study")
        assert restored.models == study.models
        assert restored.table2_rows() == study.table2_rows()
        assert restored == study

    def test_manifest_contents(self, study, tmp_path):
        manifest_path = study.save(tmp_path / "study")
        manifest = json.loads(manifest_path.read_text())
        assert manifest["format"] == "repro-study-v1"
        assert manifest["table2"]["Nexus 5"]["soc"] == "SD-800"

    def test_files_laid_out_per_model(self, study, tmp_path):
        study.save(tmp_path / "study")
        assert (tmp_path / "study" / "nexus-5" / "unconstrained.json").exists()
        assert (tmp_path / "study" / "nexus-6" / "fixed-frequency.json").exists()

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            Study.load(tmp_path)

    def test_foreign_format_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": "other"}')
        with pytest.raises(AnalysisError):
            Study.load(tmp_path)


class TestRunStudy:
    def test_runs_requested_models(self, fast_runner):
        study = run_study(fast_runner, models=["Nexus 6"])
        assert study.models == ("Nexus 6",)
        assert study.performance("Nexus 6").devices[0].performance > 0

    def test_round_trips_through_disk(self, fast_runner, tmp_path):
        study = run_study(fast_runner, models=["Nexus 6"])
        study.save(tmp_path / "s")
        assert Study.load(tmp_path / "s") == study
