"""Batched fleet execution: eligibility, fallback, sharding, parity.

The batching knob is a performance choice, never a correctness one: any
fleet the batched engine cannot model must silently take the serial
per-unit path, and a batched fleet must return the same results (within
``BATCH_SPEC``) in the same order the serial runner would.
"""

from dataclasses import replace

import pytest

from repro.core.batch_runner import (
    MIN_AUTO_BATCH_UNITS,
    batch_ineligibility_reason,
    run_batch,
)
from repro.core.config import AccubenchConfig
from repro.core.experiments import unconstrained
from repro.core.parallel import BatchTask, DeviceTask
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.device.fleet import synthetic_fleet
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry, use_registry

MODEL = "Nexus 5"


def bench(**overrides):
    base = replace(
        AccubenchConfig().scaled(0.02), thermal_solver="expm", iterations=1
    )
    return replace(base, **overrides)


def fleet(count, solver="expm"):
    return synthetic_fleet(
        MODEL, count, thermal_solver=solver, initial_temp_c=26.0
    )


class TestEligibility:
    def test_expm_fleet_is_eligible(self):
        config = CampaignConfig(accubench=bench())
        assert (
            batch_ineligibility_reason(config, unconstrained(), fleet(4)) is None
        )

    def test_euler_config_is_ineligible(self):
        config = CampaignConfig(accubench=bench(thermal_solver="euler"))
        reason = batch_ineligibility_reason(
            config, unconstrained(), fleet(4, solver="euler")
        )
        assert reason == "thermal_solver is not 'expm'"

    def test_no_fast_forward_is_ineligible(self):
        config = CampaignConfig(accubench=bench(sleep_fast_forward=False))
        assert "fast_forward" in batch_ineligibility_reason(
            config, unconstrained(), fleet(4)
        )

    def test_invariant_observers_are_eligible(self):
        config = CampaignConfig(accubench=bench(check_invariants=True))
        assert (
            batch_ineligibility_reason(config, unconstrained(), fleet(4)) is None
        )

    def test_mixed_models_are_eligible(self):
        config = CampaignConfig(accubench=bench())
        mixed = fleet(2) + synthetic_fleet(
            "Nexus 6", 2, thermal_solver="expm", initial_temp_c=26.0
        )
        assert (
            batch_ineligibility_reason(config, unconstrained(), mixed) is None
        )

    def test_run_batch_rejects_ineligible_fleet(self):
        config = CampaignConfig(accubench=bench(thermal_solver="euler"))
        with pytest.raises(ConfigurationError, match="not batchable"):
            run_batch(fleet(4, solver="euler"), unconstrained(), config)


class TestTaskShaping:
    def runner(self, batch=None, jobs=1):
        return CampaignRunner(
            CampaignConfig(accubench=bench(batch=batch), jobs=jobs)
        )

    def test_auto_mode_batches_at_threshold(self):
        runner = self.runner(batch=None)
        tasks = runner._fleet_tasks(
            fleet(MIN_AUTO_BATCH_UNITS), unconstrained(), 1
        )
        assert len(tasks) == 1 and isinstance(tasks[0], BatchTask)

    def test_auto_mode_stays_serial_below_threshold(self):
        runner = self.runner(batch=None)
        tasks = runner._fleet_tasks(
            fleet(MIN_AUTO_BATCH_UNITS - 1), unconstrained(), 1
        )
        assert all(isinstance(task, DeviceTask) for task in tasks)

    def test_forced_on_batches_small_fleets(self):
        runner = self.runner(batch=True)
        tasks = runner._fleet_tasks(fleet(2), unconstrained(), 1)
        assert len(tasks) == 1 and isinstance(tasks[0], BatchTask)

    def test_forced_off_never_batches(self):
        runner = self.runner(batch=False)
        tasks = runner._fleet_tasks(fleet(12), unconstrained(), 4)
        assert all(isinstance(task, DeviceTask) for task in tasks)

    def test_ineligible_fleet_falls_back_even_when_forced_on(self):
        runner = CampaignRunner(
            CampaignConfig(accubench=bench(thermal_solver="euler", batch=True))
        )
        tasks = runner._fleet_tasks(
            fleet(8, solver="euler"), unconstrained(), 1
        )
        assert all(isinstance(task, DeviceTask) for task in tasks)

    def test_jobs_shard_contiguously_in_fleet_order(self):
        runner = self.runner(batch=True, jobs=2)
        units = fleet(10)
        tasks = runner._fleet_tasks(units, unconstrained(), 2)
        assert [isinstance(task, BatchTask) for task in tasks] == [True, True]
        flattened = [dev for task in tasks for dev in task.devices]
        assert [d.serial for d in flattened] == [d.serial for d in units]
        assert min(len(task.devices) for task in tasks) >= MIN_AUTO_BATCH_UNITS


class TestBatchedFleetParity:
    def test_run_fleet_matches_serial_results(self):
        serial = CampaignRunner(
            CampaignConfig(accubench=bench(batch=False))
        ).run_fleet(MODEL, unconstrained(), devices=fleet(4))
        batched = CampaignRunner(
            CampaignConfig(accubench=bench(batch=True))
        ).run_fleet(MODEL, unconstrained(), devices=fleet(4))
        assert serial.serials == batched.serials
        from repro.check.differential import BATCH_SPEC

        assert BATCH_SPEC.compare_experiment(serial, batched) == []

    def test_metrics_schema_matches_serial_keys(self):
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            CampaignRunner(
                CampaignConfig(accubench=bench(batch=True))
            ).run_fleet(MODEL, unconstrained(), devices=fleet(4))
        snapshot = registry.snapshot()
        for key in (
            "engine.steps",
            "engine.fast_forward_steps",
            "engine.fast_forward_windows",
            "engine.sim_time_s",
            "engine.throttle_events",
            "engine.core_offline_events",
            "protocol.iterations",
            "propagator.cache_hits",
            "thermabox.heater_duty_s",
            "batch.cohort_splits",
        ):
            assert key in snapshot["counters"], key
        assert snapshot["counters"]["protocol.iterations"] == 4
        assert snapshot["gauges"]["batch.size"] == 4
        assert snapshot["gauges"]["batch.steps_per_sec"] > 0


class TestCliPlumbing:
    def test_batch_flag_round_trips_into_config(self):
        from repro.cli import build_parser, _runner

        parser = build_parser()
        for argv, expected in (
            (["run-fleet", MODEL, "--batch"], True),
            (["run-fleet", MODEL, "--no-batch"], False),
            (["run-fleet", MODEL], None),
        ):
            args = parser.parse_args(argv)
            runner = _runner(args)
            assert runner.config.accubench.batch is expected
