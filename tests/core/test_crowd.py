"""Crowdsourced study simulation (paper §VI)."""

import pytest

from repro.core.ambient_estimation import AmbientEstimate
from repro.core.config import AccubenchConfig
from repro.core.crowd import (
    CrowdConfig,
    Submission,
    run_crowd_study,
    silicon_ranking_quality,
    spearman_rank_correlation,
    strict_filters,
)
from repro.errors import AnalysisError, ConfigurationError


def submission(serial, score, ambient_est, r2=0.99, leak=1.0, true_ambient=26.0):
    return Submission(
        serial=serial,
        score=score,
        energy_j=500.0,
        ambient_estimate=AmbientEstimate(
            ambient_c=ambient_est, time_constant_s=300.0,
            r_squared=r2, sample_count=100,
        ),
        true_ambient_c=true_ambient,
        true_leak_factor=leak,
    )


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman_rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0

    def test_perfect_disagreement(self):
        assert spearman_rank_correlation([1, 2, 3, 4], [40, 30, 20, 10]) == -1.0

    def test_ties_handled(self):
        rho = spearman_rank_correlation([1, 1, 2, 3], [5, 5, 6, 7])
        assert rho == pytest.approx(1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            spearman_rank_correlation([1, 2], [1, 2, 3])

    def test_too_short_rejected(self):
        with pytest.raises(AnalysisError):
            spearman_rank_correlation([1, 2], [2, 1])

    def test_constant_input_rejected(self):
        with pytest.raises(AnalysisError):
            spearman_rank_correlation([1, 1, 1], [1, 2, 3])

    def test_monotone_nonlinear_is_perfect(self):
        assert spearman_rank_correlation([1, 2, 3, 4], [1, 8, 27, 64]) == 1.0


class TestStrictFilters:
    def test_ambient_band(self):
        kept = strict_filters(
            [
                submission("a", 1.0, ambient_est=26.0),
                submission("b", 1.0, ambient_est=35.0),
                submission("c", 1.0, ambient_est=23.0),
            ],
            ambient_band_c=(22.0, 30.0),
        )
        assert [s.serial for s in kept] == ["a", "c"]

    def test_confidence_filter(self):
        kept = strict_filters(
            [
                submission("clean", 1.0, ambient_est=26.0, r2=0.99),
                submission("noisy", 1.0, ambient_est=26.0, r2=0.5),
            ]
        )
        assert [s.serial for s in kept] == ["clean"]

    def test_bad_band_rejected(self):
        with pytest.raises(AnalysisError):
            strict_filters([], ambient_band_c=(30.0, 22.0))


class TestRankingQuality:
    def test_good_data_scores_high(self):
        subs = [
            submission("a", score=1000.0, ambient_est=26.0, leak=0.5),
            submission("b", score=950.0, ambient_est=26.0, leak=1.0),
            submission("c", score=900.0, ambient_est=26.0, leak=1.5),
        ]
        assert silicon_ranking_quality(subs) == 1.0

    def test_inverted_data_scores_low(self):
        subs = [
            submission("a", score=900.0, ambient_est=26.0, leak=0.5),
            submission("b", score=950.0, ambient_est=26.0, leak=1.0),
            submission("c", score=1000.0, ambient_est=26.0, leak=1.5),
        ]
        assert silicon_ranking_quality(subs) == -1.0

    def test_too_few_rejected(self):
        with pytest.raises(AnalysisError):
            silicon_ranking_quality([submission("a", 1.0, 26.0)])


class TestCrowdConfig:
    def test_defaults_valid(self):
        assert CrowdConfig().user_count == 30

    def test_bad_user_count_rejected(self):
        with pytest.raises(ConfigurationError):
            CrowdConfig(user_count=0)

    def test_bad_ranges_rejected(self):
        with pytest.raises(ConfigurationError):
            CrowdConfig(ambient_range_c=(30.0, 20.0))
        with pytest.raises(ConfigurationError):
            CrowdConfig(charge_range=(0.0, 1.0))


class TestRunCrowdStudy:
    @pytest.fixture(scope="class")
    def small_study(self):
        config = CrowdConfig(
            model="Nexus 5",
            user_count=6,
            protocol=AccubenchConfig(
                warmup_s=40.0, workload_s=60.0, cooldown_target_c=42.0,
                cooldown_timeout_s=2400.0, iterations=1, dt=0.25,
                trace_decimation=20,
            ),
            probe_heat_s=60.0,
            probe_observe_s=300.0,
            root_seed=7,
        )
        return run_crowd_study(config)

    def test_everyone_submits(self, small_study):
        assert len(small_study) == 6
        assert len({s.serial for s in small_study}) == 6

    def test_submissions_carry_field_data(self, small_study):
        for s in small_study:
            assert s.score > 0
            assert s.energy_j > 0
            assert s.ambient_estimate.sample_count > 0

    def test_ambient_estimates_track_truth(self, small_study):
        errors = [
            abs(s.ambient_estimate.ambient_c - s.true_ambient_c)
            for s in small_study
        ]
        assert max(errors) < 6.0

    def test_deterministic(self, small_study):
        config = CrowdConfig(
            model="Nexus 5",
            user_count=6,
            protocol=AccubenchConfig(
                warmup_s=40.0, workload_s=60.0, cooldown_target_c=42.0,
                cooldown_timeout_s=2400.0, iterations=1, dt=0.25,
                trace_decimation=20,
            ),
            probe_heat_s=60.0,
            probe_observe_s=300.0,
            root_seed=7,
        )
        again = run_crowd_study(config)
        assert [s.score for s in again] == [s.score for s in small_study]
