"""Pluggable execution backends: parity, windows, transport, failures.

The headline contract (gated unconditionally, not env-gated): every
backend at every worker count produces bit-identical
:class:`DeviceResult` lists — trace sample bytes and phase annotations
included — because *where* a task ran and *how* its results travelled
must never be observable in the results.  Around that sit the plumbing
contracts: lazy task iterables are pulled through a bounded in-flight
window, transport telemetry counts what actually moved, shared-memory
segments and spill files never leak (success, abort or discard), and a
worker exception surfaces in the parent as itself, chained from
:class:`BackendError` with the worker traceback.
"""

import gc
import json
from dataclasses import replace

import numpy as np
import pytest

from repro.core.backends import (
    BACKEND_NAMES,
    InProcessBackend,
    ProcessPoolBackend,
    SharedMemoryBackend,
    default_window,
    resolve_backend,
    validate_backend,
)
from repro.core.config import AccubenchConfig
from repro.core.experiments import unconstrained
from repro.core.parallel import CrowdCohortTask, DeviceTask, run_tasks
from repro.core.runner import CampaignConfig
from repro.core.serialize import device_to_dict
from repro.device.fleet import synthetic_fleet
from repro.errors import BackendError, ConfigurationError
from repro.obs.metrics import MetricsRegistry, use_registry

MODEL = "Nexus 5"

#: Every concrete backend name (``auto`` resolves to one of these).
CONCRETE = ("in-process", "process-pool", "shared-memory")


def traced_config() -> CampaignConfig:
    config = CampaignConfig(accubench=AccubenchConfig().scaled(0.02))
    return replace(
        config, accubench=replace(config.accubench, keep_traces=True)
    )


def fleet_tasks(count: int = 4, root_seed: int = 11):
    config = traced_config()
    return [
        DeviceTask(
            device=device,
            experiment=unconstrained(),
            config=config,
            iterations=1,
        )
        for device in synthetic_fleet(MODEL, count=count, root_seed=root_seed)
    ]


def digest(results):
    """Scalar fields plus raw trace bytes — the full parity surface."""
    scalars = [
        json.dumps(device_to_dict(result), sort_keys=True)
        for result in results
    ]
    traces = [
        (
            iteration.trace.samples().tobytes(),
            iteration.trace.phases,
            iteration.trace.open_phase,
        )
        for result in results
        for iteration in result.iterations
        if iteration.trace is not None
    ]
    assert traces, "parity fixture must actually carry traces"
    return scalars, traces


@pytest.fixture(scope="module")
def reference():
    return digest(run_tasks(fleet_tasks(), jobs=1, backend="in-process"))


class TestParity:
    """Bit-identical results for any backend and any jobs count."""

    @pytest.mark.parametrize("backend", CONCRETE)
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_results_identical_with_trace_bytes(
        self, backend, jobs, reference
    ):
        results = run_tasks(fleet_tasks(), jobs=jobs, backend=backend)
        assert digest(results) == reference

    def test_auto_matches_explicit(self, reference):
        assert digest(run_tasks(fleet_tasks(), jobs=2)) == reference

    def test_caller_owned_backend_survives_dispatches(self, reference):
        # A constructed instance is used as-is and not closed by
        # run_tasks, so one worker pool serves consecutive dispatches.
        with SharedMemoryBackend() as backend:
            first = run_tasks(fleet_tasks(), jobs=2, backend=backend)
            second = run_tasks(fleet_tasks(), jobs=2, backend=backend)
        assert digest(first) == reference
        assert digest(second) == reference


class TestWindow:
    """Lazy iterables are pulled at most ``window`` ahead of completions."""

    def test_shared_memory_backend_bounds_drawn_tasks(self):
        tasks = fleet_tasks(count=6)
        drawn = []

        def lazy():
            for index, task in enumerate(tasks):
                drawn.append(index)
                yield task

        completed = 0
        with SharedMemoryBackend() as backend:
            for _index, _payload in backend.execute(lazy(), 2, window=2):
                completed += 1
                # At most window tasks beyond the completions consumed.
                assert len(drawn) <= completed + 2
        assert completed == len(tasks)

    def test_in_process_backend_draws_one_at_a_time(self):
        tasks = fleet_tasks(count=3)
        drawn = []

        def lazy():
            for index, task in enumerate(tasks):
                drawn.append(index)
                yield task

        completed = 0
        for _index, _payload in InProcessBackend().execute(lazy(), 1):
            completed += 1
            assert len(drawn) == completed
        assert completed == len(tasks)


class TestSpill:
    def test_zero_budget_spills_and_leaves_no_files(
        self, tmp_path, reference
    ):
        # A zero RSS budget forces every trace block through the memmapped
        # spill path; results stay bit-identical and the spill files are
        # unlinked as soon as the parent maps them.
        backend = SharedMemoryBackend(rss_budget_mb=0, spill_dir=str(tmp_path))
        with backend:
            results = run_tasks(fleet_tasks(), jobs=2, backend=backend)
        assert digest(results) == reference
        assert list(tmp_path.glob("*.traces")) == []

    def test_live_attached_bytes_follow_trace_lifetime(self):
        backend = SharedMemoryBackend()
        with backend:
            results = run_tasks(fleet_tasks(count=2), jobs=2, backend=backend)
            assert backend.live_attached_bytes > 0
            del results
            gc.collect()
            assert backend.live_attached_bytes == 0


class TestTransportTelemetry:
    def run_with_registry(self, backend):
        with use_registry(MetricsRegistry(enabled=True)) as registry:
            results = run_tasks(fleet_tasks(), jobs=2, backend=backend)
        trace_count = sum(
            1
            for result in results
            for iteration in result.iterations
            if iteration.trace is not None and len(iteration.trace)
        )
        return registry.snapshot()["counters"], trace_count

    def test_shared_memory_attaches_instead_of_copying(self):
        counters, traces = self.run_with_registry("shared-memory")
        assert counters["transport.traces_attached"] == traces
        assert counters["transport.shm_bytes"] > 0
        assert counters.get("transport.traces_copied", 0) == 0
        # (The pickled-vs-shm byte *ratio* is a trace-heavy workload
        # claim; benchmarks/test_perf_backend.py asserts it at scale.)

    def test_process_pool_copies_every_trace(self):
        counters, traces = self.run_with_registry("process-pool")
        assert counters["transport.traces_copied"] == traces
        assert counters["transport.pickle_bytes"] > 0
        assert counters.get("transport.shm_bytes", 0) == 0
        assert counters.get("transport.traces_attached", 0) == 0


class TestFailures:
    def test_worker_exception_propagates_as_itself(self):
        from repro.core.crowd import CrowdConfig

        # An empty cohort is rejected inside execute_cohort — in the
        # worker process — and must surface in the parent as the same
        # exception type, chained from BackendError with the traceback.
        bad = CrowdCohortTask(cohort_index=0, config=CrowdConfig(), users=())
        with pytest.raises(ConfigurationError) as info:
            run_tasks([bad, bad], jobs=2, backend="shared-memory")
        assert isinstance(info.value.__cause__, BackendError)
        assert "worker traceback" in str(info.value.__cause__)

    def test_abandoned_stream_tears_down_and_pool_rebuilds(self):
        # A consumer that walks away mid-stream (upstream exception)
        # must not leave stale completions to collide with the next
        # dispatch: the pool is torn down and lazily rebuilt.
        backend = SharedMemoryBackend()
        with backend:
            stream = backend.execute(iter(fleet_tasks(count=4)), 2)
            next(stream)
            stream.close()
            results = run_tasks(
                fleet_tasks(count=2), jobs=2, backend=backend
            )
        assert len(results) == 2

    def test_close_is_idempotent(self):
        backend = SharedMemoryBackend()
        list(backend.execute(iter(fleet_tasks(count=1)), 1))
        backend.close()
        backend.close()


class TestResolution:
    def test_backend_names(self):
        assert BACKEND_NAMES == (
            "auto",
            "in-process",
            "process-pool",
            "shared-memory",
        )

    def test_validate_returns_known_names(self):
        for name in BACKEND_NAMES:
            assert validate_backend(name) == name
        with pytest.raises(ConfigurationError):
            validate_backend("bogus")

    def test_auto_resolution(self):
        assert isinstance(resolve_backend("auto", 1), InProcessBackend)
        with resolve_backend("auto", 2) as parallel:
            assert isinstance(parallel, SharedMemoryBackend)
        with resolve_backend("process-pool", 2) as pool:
            assert isinstance(pool, ProcessPoolBackend)
        # Explicit names are honored even at one job: the parity
        # pairings rely on a 1-worker pool with full transport.
        with resolve_backend("shared-memory", 1) as shm:
            assert isinstance(shm, SharedMemoryBackend)

    def test_default_window_adds_prefetch(self):
        assert default_window(1) == 3
        assert default_window(4) == 6

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(backend="bogus")
        with pytest.raises(ConfigurationError):
            run_tasks([], jobs=1, backend="bogus")
        assert CampaignConfig(backend="shared-memory").backend == (
            "shared-memory"
        )
