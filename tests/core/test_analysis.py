"""Statistical primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.core.analysis import (
    energy_variation,
    normalize,
    performance_variation,
    relative_standard_deviation,
)
from repro.errors import AnalysisError

positive_floats = st.floats(min_value=0.1, max_value=1e6)


class TestRsd:
    def test_identical_values_zero(self):
        assert relative_standard_deviation([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        # Values 9, 10, 11: mean 10, sample std 1 -> RSD 0.1.
        assert relative_standard_deviation([9.0, 10.0, 11.0]) == pytest.approx(0.1)

    def test_single_value_zero(self):
        assert relative_standard_deviation([42.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            relative_standard_deviation([])

    def test_zero_mean_rejected(self):
        with pytest.raises(AnalysisError):
            relative_standard_deviation([-1.0, 1.0])

    def test_absolute_value_of_cv(self):
        # Negative-mean data still yields a positive RSD (paper: "the
        # absolute value of the coefficient of variation").
        assert relative_standard_deviation([-9.0, -10.0, -11.0]) == pytest.approx(0.1)

    @given(st.lists(positive_floats, min_size=2, max_size=20))
    def test_never_negative(self, values):
        assert relative_standard_deviation(values) >= 0.0

    @given(st.lists(positive_floats, min_size=2, max_size=20), positive_floats)
    def test_scale_invariant(self, values, scale):
        original = relative_standard_deviation(values)
        scaled = relative_standard_deviation([v * scale for v in values])
        assert scaled == pytest.approx(original, rel=1e-6, abs=1e-9)


class TestNormalize:
    def test_max_reference(self):
        assert normalize([2.0, 4.0], reference="max") == [0.5, 1.0]

    def test_min_reference(self):
        assert normalize([2.0, 4.0], reference="min") == [1.0, 2.0]

    def test_first_reference(self):
        assert normalize([2.0, 4.0], reference="first") == [1.0, 2.0]

    def test_unknown_reference_rejected(self):
        with pytest.raises(AnalysisError):
            normalize([1.0], reference="median")

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            normalize([])

    def test_zero_denominator_rejected(self):
        with pytest.raises(AnalysisError):
            normalize([0.0, 1.0], reference="min")

    @given(st.lists(positive_floats, min_size=1, max_size=20))
    def test_max_normalization_bounded(self, values):
        normalized = normalize(values, reference="max")
        assert all(0.0 < v <= 1.0 + 1e-12 for v in normalized)
        assert max(normalized) == pytest.approx(1.0)


class TestVariationMetrics:
    def test_performance_variation_matches_paper_phrasing(self):
        # "bin-0 ... being 14% faster than bin-3": best/worst - 1.
        assert performance_variation([114.0, 100.0]) == pytest.approx(0.14)

    def test_energy_variation_matches_paper_phrasing(self):
        # "consumes 19% less energy than bin-3": 1 - best/worst.
        assert energy_variation([81.0, 100.0]) == pytest.approx(0.19)

    def test_identical_units_no_variation(self):
        assert performance_variation([5.0, 5.0]) == 0.0
        assert energy_variation([5.0, 5.0]) == 0.0

    def test_single_unit_rejected(self):
        with pytest.raises(AnalysisError):
            performance_variation([5.0])
        with pytest.raises(AnalysisError):
            energy_variation([5.0])

    def test_non_positive_rejected(self):
        with pytest.raises(AnalysisError):
            performance_variation([0.0, 5.0])
        with pytest.raises(AnalysisError):
            energy_variation([-1.0, -5.0])

    @given(st.lists(positive_floats, min_size=2, max_size=10))
    def test_performance_variation_non_negative(self, values):
        assert performance_variation(values) >= 0.0

    @given(st.lists(positive_floats, min_size=2, max_size=10))
    def test_energy_variation_bounded(self, values):
        assert 0.0 <= energy_variation(values) < 1.0

    @given(st.lists(positive_floats, min_size=2, max_size=10))
    def test_order_invariant(self, values):
        assert performance_variation(values) == performance_variation(
            list(reversed(values))
        )
