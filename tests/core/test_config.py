"""ACCUBENCH configuration."""

import pytest

from repro.core.config import AccubenchConfig
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_durations(self):
        config = AccubenchConfig()
        assert config.warmup_s == 180.0  # 3 minutes
        assert config.workload_s == 300.0  # 5 minutes
        assert config.cooldown_poll_s == 5.0
        assert config.iterations == 5

    def test_traces_dropped_by_default(self):
        assert not AccubenchConfig().keep_traces


class TestScaling:
    def test_scaled_durations(self):
        scaled = AccubenchConfig().scaled(0.1)
        assert scaled.warmup_s == pytest.approx(18.0)
        assert scaled.workload_s == pytest.approx(30.0)

    def test_scaling_preserves_other_fields(self):
        scaled = AccubenchConfig().scaled(0.5)
        assert scaled.iterations == 5
        assert scaled.dt == 0.1

    def test_bad_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            AccubenchConfig().scaled(0.0)

    def test_with_traces(self):
        assert AccubenchConfig().with_traces().keep_traces


class TestValidation:
    def test_zero_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            AccubenchConfig(warmup_s=0.0)

    def test_zero_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            AccubenchConfig(workload_s=0.0)

    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            AccubenchConfig(iterations=0)

    def test_poll_below_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            AccubenchConfig(dt=1.0, cooldown_poll_s=0.5)

    def test_zero_decimation_rejected(self):
        with pytest.raises(ConfigurationError):
            AccubenchConfig(trace_decimation=0)


class TestFiniteness:
    """NaN/inf must fail at construction, not deep inside a campaign."""

    NAN = float("nan")

    @pytest.mark.parametrize(
        "field",
        [
            "warmup_s",
            "workload_s",
            "cooldown_target_c",
            "cooldown_poll_s",
            "cooldown_timeout_s",
            "dt",
        ],
    )
    def test_nan_rejected_with_field_name(self, field):
        with pytest.raises(ConfigurationError, match=field):
            AccubenchConfig(**{field: self.NAN})

    @pytest.mark.parametrize("bad", [float("inf"), float("-inf")])
    def test_infinite_duration_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            AccubenchConfig(warmup_s=bad)

    def test_negative_cooldown_target_rejected(self):
        with pytest.raises(ConfigurationError):
            AccubenchConfig(cooldown_target_c=-5.0)

    def test_check_invariants_defaults_off(self):
        assert not AccubenchConfig().check_invariants


class TestSolverFields:
    def test_euler_is_the_default(self):
        config = AccubenchConfig()
        assert config.thermal_solver == "euler"
        assert config.sleep_fast_forward

    def test_expm_accepted(self):
        assert AccubenchConfig(thermal_solver="expm").thermal_solver == "expm"

    def test_unknown_solver_rejected(self):
        with pytest.raises(ConfigurationError):
            AccubenchConfig(thermal_solver="rk4")

    def test_scaling_preserves_solver(self):
        scaled = AccubenchConfig(thermal_solver="expm").scaled(0.5)
        assert scaled.thermal_solver == "expm"
