"""Bootstrap confidence intervals."""

import pytest

from repro.core.bootstrap import (
    ConfidenceInterval,
    energy_variation_ci,
    performance_variation_ci,
    variation_is_significant,
)
from repro.core.results import DeviceResult, ExperimentResult, IterationResult
from repro.errors import AnalysisError


def experiment(unit_scores):
    """unit_scores: {serial: [per-iteration perf]} with energy = 1000 - perf/2."""
    devices = []
    for serial, scores in unit_scores.items():
        iterations = tuple(
            IterationResult(
                model="Nexus 5", serial=serial, workload="UNCONSTRAINED",
                iterations_completed=score, energy_j=1000.0 - score / 2.0,
                mean_power_w=1.0, mean_freq_mhz=2000.0, max_cpu_temp_c=75.0,
                cooldown_s=0.0, time_throttled_s=0.0,
            )
            for score in scores
        )
        devices.append(
            DeviceResult(
                model="Nexus 5", serial=serial, workload="UNCONSTRAINED",
                iterations=iterations,
            )
        )
    return ExperimentResult(
        model="Nexus 5", workload="UNCONSTRAINED", devices=tuple(devices)
    )


WELL_SEPARATED = experiment(
    {
        "bin-0": [900.0, 905.0, 898.0, 902.0],
        "bin-3": [780.0, 778.0, 784.0, 781.0],
    }
)

OVERLAPPING = experiment(
    {
        "a": [850.0, 900.0, 820.0, 880.0],
        "b": [860.0, 830.0, 890.0, 845.0],
    }
)


class TestPerformanceCi:
    def test_point_matches_metric(self):
        ci = performance_variation_ci(WELL_SEPARATED, resamples=300)
        assert ci.point == pytest.approx((901.25 - 780.75) / 780.75)

    def test_interval_brackets_point(self):
        ci = performance_variation_ci(WELL_SEPARATED, resamples=300)
        assert ci.low <= ci.point <= ci.high

    def test_tight_data_tight_interval(self):
        tight = performance_variation_ci(WELL_SEPARATED, resamples=300)
        loose = performance_variation_ci(OVERLAPPING, resamples=300)
        assert tight.width < loose.width

    def test_deterministic_for_seed(self):
        a = performance_variation_ci(WELL_SEPARATED, resamples=300, seed=4)
        b = performance_variation_ci(WELL_SEPARATED, resamples=300, seed=4)
        assert (a.low, a.high) == (b.low, b.high)

    def test_resample_floor(self):
        with pytest.raises(AnalysisError):
            performance_variation_ci(WELL_SEPARATED, resamples=10)

    def test_bad_confidence_rejected(self):
        with pytest.raises(AnalysisError):
            performance_variation_ci(WELL_SEPARATED, confidence=1.0, resamples=300)


class TestEnergyCi:
    def test_energy_interval(self):
        ci = energy_variation_ci(WELL_SEPARATED, resamples=300)
        assert 0.0 < ci.low <= ci.point <= ci.high


class TestSignificance:
    def test_separated_fleet_is_significant(self):
        ci = performance_variation_ci(WELL_SEPARATED, resamples=500)
        assert variation_is_significant(ci)

    def test_identical_units_are_not(self):
        same = experiment(
            {
                "a": [850.0, 853.0, 848.0, 851.0],
                "b": [851.0, 849.0, 852.0, 850.0],
            }
        )
        ci = performance_variation_ci(same, resamples=500)
        assert not variation_is_significant(ci, noise_floor=0.01)

    def test_contains(self):
        interval = ConfidenceInterval(
            point=0.15, low=0.10, high=0.20, confidence=0.95, resamples=100
        )
        assert interval.contains(0.12)
        assert not interval.contains(0.25)
