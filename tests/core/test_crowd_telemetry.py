"""The live telemetry plane wired through the streaming crowd engine.

Same micro field protocol as ``test_crowd_stream.py``; these tests cover
the observation side: the checkpoint's telemetry block and resume
banner, the manifests written next to checkpoints and results, the
progress bus / watchdog wiring, and the contract that none of it moves
a single result bit.
"""

import json
import re
from dataclasses import replace

import pytest

from repro.check.differential import default_crowd_differential_config
from repro.core.crowd_stream import (
    resume_banner,
    run_streaming_crowd_study,
)
from repro.obs.manifest import manifest_path_for, read_manifest
from repro.obs.progress import ProgressBus
from repro.obs.watch import DropRateSpikeRule, Watchdog


@pytest.fixture(scope="module")
def micro_config():
    return default_crowd_differential_config(user_count=8)


class TestCheckpointTelemetryBlock:
    def test_checkpoint_carries_the_cursor(self, micro_config, tmp_path):
        path = str(tmp_path / "crowd.ckpt")
        run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path,
            stop_after_cohorts=2,
        )
        with open(path) as fp:
            document = json.load(fp)
        telemetry = document["telemetry"]
        assert telemetry["users_done"] == 6
        assert telemetry["cohorts_done"] == 2
        assert telemetry["dropped_total"] == sum(
            document["estimators"]["dropped"].values()
        )
        assert telemetry["users_per_sec"] >= 0.0
        assert telemetry["wall_s"] > 0.0

    def test_telemetry_block_does_not_affect_resume(
        self, micro_config, tmp_path
    ):
        baseline = run_streaming_crowd_study(micro_config, cohort_size=3)
        path = str(tmp_path / "crowd.ckpt")
        run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path,
            stop_after_cohorts=2,
        )
        # Strip the telemetry block: resume must not even look at it.
        with open(path) as fp:
            document = json.load(fp)
        del document["telemetry"]
        with open(path, "w") as fp:
            json.dump(document, fp)
        resumed = run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path
        )
        assert resumed.to_dict() == dict(
            baseline.to_dict(), resumed_from_cohort=2
        )


class TestResumeBanner:
    def test_banner_matches_the_pre_kill_state(self, micro_config, tmp_path):
        path = str(tmp_path / "crowd.ckpt")
        run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path,
            stop_after_cohorts=2,
        )
        with open(path) as fp:
            pre_kill = json.load(fp)
        lines = []
        run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path,
            log=lines.append,
        )
        banner = lines[0]
        assert banner == resume_banner(pre_kill)
        assert banner.startswith("resuming at 6 users, 2 cohorts")
        rate = pre_kill["telemetry"]["users_per_sec"]
        assert f"{rate:.2f} users/s" in banner

    def test_banner_without_telemetry_block_falls_back(self):
        document = {
            "cohorts_done": 4,
            "estimators": {"users_done": 12},
        }
        assert resume_banner(document) == "resuming at 12 users, 4 cohorts"

    def test_fresh_start_prints_no_banner(self, micro_config, tmp_path):
        lines = []
        run_streaming_crowd_study(
            micro_config, cohort_size=3,
            checkpoint_path=str(tmp_path / "fresh.ckpt"),
            stop_after_cohorts=1, log=lines.append,
        )
        assert lines == []


class TestManifests:
    def test_interrupted_and_resumed_manifests_agree_on_identity(
        self, micro_config, tmp_path
    ):
        path = str(tmp_path / "crowd.ckpt")
        partial = run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path,
            stop_after_cohorts=2,
        )
        manifest_path = manifest_path_for(path)
        interrupted = read_manifest(manifest_path)
        resumed_result = run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path
        )
        resumed = read_manifest(manifest_path)
        assert interrupted["fingerprint"] == resumed["fingerprint"]
        assert interrupted["root_seed"] == resumed["root_seed"]
        assert interrupted["fingerprint"] == partial.fingerprint
        assert resumed["fingerprint"] == resumed_result.fingerprint
        assert resumed["kind"] == "crowd-stream"

    def test_final_manifest_embeds_the_result(self, micro_config, tmp_path):
        manifest_path = str(tmp_path / "run.manifest.json")
        result = run_streaming_crowd_study(
            micro_config, cohort_size=3, manifest_path=manifest_path
        )
        manifest = read_manifest(manifest_path)
        assert manifest["kind"] == "crowd-stream"
        assert manifest["result"] == json.loads(
            json.dumps(result.to_dict())
        )
        assert manifest["fingerprint"] == result.fingerprint

    def test_no_manifest_without_a_destination(self, micro_config, tmp_path):
        run_streaming_crowd_study(micro_config, cohort_size=3)
        assert list(tmp_path.iterdir()) == []


class TestResultIdentity:
    def test_result_carries_format_and_fingerprint(self, micro_config):
        result = run_streaming_crowd_study(micro_config, cohort_size=3)
        document = result.to_dict()
        assert document["format"] == "repro-crowd-stream-v1"
        assert re.fullmatch(r"[0-9a-f]{64}", document["fingerprint"])

    def test_fingerprint_tracks_the_configuration(self, micro_config):
        a = run_streaming_crowd_study(micro_config, cohort_size=3)
        b = run_streaming_crowd_study(micro_config, cohort_size=4)
        c = run_streaming_crowd_study(
            replace(micro_config, root_seed=1), cohort_size=3
        )
        assert a.fingerprint != b.fingerprint
        assert a.fingerprint != c.fingerprint


class TestBusAndWatchdog:
    def test_bus_streams_cohorts_and_campaign_cursor(self, micro_config):
        bus = ProgressBus()
        run_streaming_crowd_study(
            micro_config, cohort_size=3, telemetry=bus, checkpoint_every=2,
        )
        status = bus.status()
        assert status["state"] == "complete"
        campaign = status["campaign"]
        assert campaign["users_done"] == 8
        assert campaign["users_total"] == 8
        assert campaign["cohorts_done"] == 3
        assert campaign["cohorts_total"] == 3
        assert campaign["users_per_sec"] > 0
        shards = [s["serial"] for s in status["shards"]]
        assert shards == ["cohort-0000", "cohort-0001", "cohort-0002"]

    def test_checkpoint_cursor_respects_cadence(self, micro_config, tmp_path):
        bus = ProgressBus()
        run_streaming_crowd_study(
            micro_config, cohort_size=3, telemetry=bus,
            checkpoint_path=str(tmp_path / "c.ckpt"), checkpoint_every=2,
        )
        # Cohorts 2 (cadence) and 3 (final) checkpoint; the cursor shows
        # the last one written.
        assert bus.status()["campaign"]["checkpoint_cohort"] == 3

    def test_watchdog_fires_on_systematic_drops(self, micro_config):
        # 50 s probes drop every user — a 100% drop rate the spike rule
        # must catch through the driver's own wiring.
        config = replace(micro_config, user_count=4, probe_observe_s=50.0)
        watchdog = Watchdog([DropRateSpikeRule(threshold=0.5, min_users=2)])
        warnings = []
        result = run_streaming_crowd_study(
            config, cohort_size=2, watchdog=watchdog, log=warnings.append,
        )
        assert watchdog.triggered
        assert watchdog.warnings[0]["rule"] == "drop_rate_spike"
        assert any("drop_rate_spike" in line for line in warnings)
        assert result.submission_count == 0  # the run itself still finished

    def test_observation_does_not_change_results(self, micro_config):
        bare = run_streaming_crowd_study(micro_config, cohort_size=3)
        bus = ProgressBus()
        watchdog = Watchdog([DropRateSpikeRule()])
        observed = run_streaming_crowd_study(
            micro_config, cohort_size=3, telemetry=bus, watchdog=watchdog,
        )
        assert observed.to_dict() == bare.to_dict()
