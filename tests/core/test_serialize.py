"""Result serialization."""

import io
import json

import pytest

from repro.core.results import DeviceResult, ExperimentResult, IterationResult
from repro.core.serialize import (
    SCHEMA_VERSION,
    dump_experiment,
    dumps_experiment,
    experiment_from_dict,
    experiment_to_dict,
    iteration_from_dict,
    iteration_to_dict,
    load_experiment,
)
from repro.errors import AnalysisError
from repro.sim.trace import Trace


def iteration(serial="bin-0", perf=900.0, with_trace=False):
    trace = None
    if with_trace:
        trace = Trace(["x"])
        trace.record(0.0, x=1.0)
    return IterationResult(
        model="Nexus 5", serial=serial, workload="UNCONSTRAINED",
        iterations_completed=perf, energy_j=470.0, mean_power_w=1.57,
        mean_freq_mhz=2004.0, max_cpu_temp_c=78.2, cooldown_s=60.0,
        time_throttled_s=220.0, trace=trace,
    )


def experiment():
    devices = tuple(
        DeviceResult(
            model="Nexus 5", serial=serial, workload="UNCONSTRAINED",
            iterations=(iteration(serial, perf),),
        )
        for serial, perf in (("bin-0", 900.0), ("bin-3", 775.0))
    )
    return ExperimentResult(
        model="Nexus 5", workload="UNCONSTRAINED", devices=devices
    )


class TestIterationRoundTrip:
    def test_round_trip(self):
        original = iteration()
        assert iteration_from_dict(iteration_to_dict(original)) == original

    def test_trace_is_dropped(self):
        data = iteration_to_dict(iteration(with_trace=True))
        assert "trace" not in data

    def test_missing_field_rejected(self):
        data = iteration_to_dict(iteration())
        del data["energy_j"]
        with pytest.raises(AnalysisError):
            iteration_from_dict(data)


class TestExperimentRoundTrip:
    def test_round_trip(self):
        original = experiment()
        restored = experiment_from_dict(experiment_to_dict(original))
        assert restored == original

    def test_summary_keys_present(self):
        data = experiment_to_dict(experiment())
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["summary"]["best_serial"] == "bin-0"
        assert data["summary"]["performance_variation"] == pytest.approx(
            (900.0 - 775.0) / 775.0
        )

    def test_restored_properties_recomputed(self):
        restored = experiment_from_dict(experiment_to_dict(experiment()))
        assert restored.best_serial == "bin-0"
        assert restored.performance_variation > 0.1

    def test_unsupported_schema_rejected(self):
        data = experiment_to_dict(experiment())
        data["schema_version"] = 99
        with pytest.raises(AnalysisError):
            experiment_from_dict(data)


class TestFileInterface:
    def test_dump_and_load(self):
        buffer = io.StringIO()
        dump_experiment(experiment(), buffer)
        buffer.seek(0)
        assert load_experiment(buffer) == experiment()

    def test_dumps_and_load_string(self):
        text = dumps_experiment(experiment())
        assert load_experiment(text) == experiment()

    def test_output_is_valid_json(self):
        parsed = json.loads(dumps_experiment(experiment()))
        assert parsed["model"] == "Nexus 5"

    def test_non_object_rejected(self):
        with pytest.raises(AnalysisError):
            load_experiment("[1, 2, 3]")
