"""Figure data export."""

import numpy as np
import pytest

from repro.core.efficiency import EfficiencyPoint
from repro.core.figure_data import (
    Series,
    bar_series,
    efficiency_figure,
    export_bundle,
    histogram_series,
    trace_series,
)
from repro.core.results import DeviceResult, ExperimentResult, IterationResult
from repro.errors import AnalysisError
from repro.sim.trace import Trace


def experiment():
    def device(serial, perf, energy):
        it = IterationResult(
            model="Nexus 5", serial=serial, workload="UNCONSTRAINED",
            iterations_completed=perf, energy_j=energy, mean_power_w=1.0,
            mean_freq_mhz=2000.0, max_cpu_temp_c=75.0, cooldown_s=0.0,
            time_throttled_s=0.0,
        )
        return DeviceResult(
            model="Nexus 5", serial=serial, workload="UNCONSTRAINED",
            iterations=(it,),
        )

    return ExperimentResult(
        model="Nexus 5", workload="UNCONSTRAINED",
        devices=(device("bin-0", 900.0, 460.0), device("bin-3", 750.0, 575.0)),
    )


class TestSeries:
    def test_column_lookup(self):
        series = Series(
            name="t", x_label="x", y_label="y",
            columns=(("x", (1.0, 2.0)), ("y", (3.0, 4.0))),
        )
        assert series.column("y") == (3.0, 4.0)
        assert series.row_count == 2

    def test_unknown_column_rejected(self):
        series = Series(
            name="t", x_label="x", y_label="y", columns=(("x", (1.0,)),)
        )
        with pytest.raises(AnalysisError):
            series.column("z")

    def test_ragged_columns_rejected(self):
        with pytest.raises(AnalysisError):
            Series(
                name="t", x_label="x", y_label="y",
                columns=(("x", (1.0, 2.0)), ("y", (3.0,))),
            )

    def test_csv_rendering(self):
        series = Series(
            name="t", x_label="x", y_label="y",
            columns=(("x", (1.0, 2.0)), ("y", (0.5, 0.25))),
        )
        lines = series.to_csv().strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,0.5"


class TestBarSeries:
    def test_performance_bars(self):
        series = bar_series(experiment(), "performance")
        assert series.column("normalized")[0] == pytest.approx(1.0)
        assert series.column("raw") == (900.0, 750.0)

    def test_energy_bars_normalized_to_min(self):
        series = bar_series(experiment(), "energy")
        assert series.column("normalized")[0] == pytest.approx(1.0)
        assert series.column("normalized")[1] > 1.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(AnalysisError):
            bar_series(experiment(), "latency")


class TestTraceSeries:
    def test_time_plus_channels(self):
        trace = Trace(["cpu_temp", "freq"])
        for i in range(5):
            trace.record(float(i), cpu_temp=40.0 + i, freq=2000.0)
        series = trace_series(trace, ["cpu_temp", "freq"], name="fig04")
        assert series.column("time_s") == (0.0, 1.0, 2.0, 3.0, 4.0)
        assert series.column("cpu_temp")[-1] == 44.0

    def test_needs_channels(self):
        with pytest.raises(AnalysisError):
            trace_series(Trace(["x"]), [])


class TestEfficiencyFigure:
    def test_generation_ordering(self):
        points = [
            EfficiencyPoint("b", "SD-820", 2016, 900.0, (("u", 900.0),)),
            EfficiencyPoint("a", "SD-800", 2013, 650.0, (("u", 650.0),)),
        ]
        series = efficiency_figure(points)
        assert series.column("iters_per_kj") == (650.0, 900.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            efficiency_figure([])


class TestHistogramSeries:
    def test_from_numpy_histogram(self):
        counts, edges = np.histogram([1.0, 1.2, 3.0, 3.1], bins=2)
        series = histogram_series(counts, edges, "fig11-freq")
        assert series.row_count == 2
        assert sum(series.column("count")) == 4

    def test_mismatched_edges_rejected(self):
        with pytest.raises(AnalysisError):
            histogram_series([1.0, 2.0], [0.0, 1.0], "bad")


class TestExportBundle:
    def test_bundle(self):
        series = bar_series(experiment(), "performance", name="fig06a")
        bundle = export_bundle([series])
        assert set(bundle) == {"fig06a"}
        assert bundle["fig06a"].startswith("unit_index,")

    def test_duplicate_names_rejected(self):
        series = bar_series(experiment(), "performance", name="dup")
        with pytest.raises(AnalysisError):
            export_bundle([series, series])
