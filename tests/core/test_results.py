"""Result containers."""

import pytest

from repro.core.results import DeviceResult, ExperimentResult, IterationResult
from repro.errors import AnalysisError


def iteration(serial="bin-0", perf=800.0, energy=500.0, **overrides):
    base = dict(
        model="Nexus 5",
        serial=serial,
        workload="UNCONSTRAINED",
        iterations_completed=perf,
        energy_j=energy,
        mean_power_w=energy / 300.0,
        mean_freq_mhz=2000.0,
        max_cpu_temp_c=76.0,
        cooldown_s=120.0,
        time_throttled_s=100.0,
    )
    base.update(overrides)
    return IterationResult(**base)


def device(serial, perfs, energies):
    return DeviceResult(
        model="Nexus 5",
        serial=serial,
        workload="UNCONSTRAINED",
        iterations=tuple(
            iteration(serial, perf=p, energy=e) for p, e in zip(perfs, energies)
        ),
    )


class TestDeviceResult:
    def test_performance_mean(self):
        d = device("bin-0", [800.0, 820.0], [500.0, 510.0])
        assert d.performance == pytest.approx(810.0)

    def test_energy_mean(self):
        d = device("bin-0", [800.0, 820.0], [500.0, 510.0])
        assert d.energy_j == pytest.approx(505.0)

    def test_rsds(self):
        d = device("bin-0", [790.0, 810.0], [495.0, 505.0])
        assert d.performance_rsd > 0.0
        assert d.energy_rsd > 0.0

    def test_efficiency(self):
        d = device("bin-0", [800.0], [400.0])
        assert d.efficiency_iters_per_kj == pytest.approx(2000.0)

    def test_mean_freq(self):
        d = device("bin-0", [800.0], [400.0])
        assert d.mean_freq_mhz == 2000.0

    def test_empty_iterations_rejected(self):
        with pytest.raises(AnalysisError):
            DeviceResult(
                model="Nexus 5", serial="x", workload="UNCONSTRAINED", iterations=()
            )


class TestExperimentResult:
    @pytest.fixture
    def result(self) -> ExperimentResult:
        return ExperimentResult(
            model="Nexus 5",
            workload="UNCONSTRAINED",
            devices=(
                device("bin-0", [912.0, 908.0], [460.0, 462.0]),
                device("bin-1", [880.0, 884.0], [480.0, 482.0]),
                device("bin-3", [800.0, 796.0], [570.0, 566.0]),
            ),
        )

    def test_serials(self, result):
        assert result.serials == ("bin-0", "bin-1", "bin-3")

    def test_by_serial(self, result):
        assert result.by_serial("bin-1").performance == pytest.approx(882.0)

    def test_by_serial_missing(self, result):
        with pytest.raises(AnalysisError):
            result.by_serial("bin-9")

    def test_performance_variation(self, result):
        assert result.performance_variation == pytest.approx(
            (910.0 - 798.0) / 798.0
        )

    def test_energy_variation(self, result):
        assert result.energy_variation == pytest.approx((568.0 - 461.0) / 568.0)

    def test_best_and_worst(self, result):
        assert result.best_serial == "bin-0"
        assert result.worst_serial == "bin-3"
        assert result.most_efficient_serial == "bin-0"

    def test_performances_dict(self, result):
        assert set(result.performances()) == {"bin-0", "bin-1", "bin-3"}

    def test_mean_performance_rsd(self, result):
        assert 0.0 < result.mean_performance_rsd < 0.02

    def test_empty_devices_rejected(self):
        with pytest.raises(AnalysisError):
            ExperimentResult(model="x", workload="y", devices=())
