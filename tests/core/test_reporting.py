"""Text rendering of tables and figures."""

import pytest

from repro.core.efficiency import EfficiencyPoint
from repro.core.reporting import (
    render_efficiency,
    render_experiment,
    render_normalized_bars,
    render_table1,
    render_table2,
)
from repro.core.results import DeviceResult, ExperimentResult, IterationResult
from repro.silicon.vf_tables import nexus5_table


def experiment():
    def device(serial, perf, energy):
        it = IterationResult(
            model="Nexus 5", serial=serial, workload="UNCONSTRAINED",
            iterations_completed=perf, energy_j=energy, mean_power_w=1.0,
            mean_freq_mhz=2000.0, max_cpu_temp_c=75.0, cooldown_s=0.0,
            time_throttled_s=0.0,
        )
        return DeviceResult(
            model="Nexus 5", serial=serial, workload="UNCONSTRAINED",
            iterations=(it,),
        )

    return ExperimentResult(
        model="Nexus 5", workload="UNCONSTRAINED",
        devices=(device("bin-0", 900.0, 460.0), device("bin-3", 790.0, 570.0)),
    )


class TestTable1:
    def test_contains_all_bins(self):
        text = render_table1(nexus5_table())
        for bin_index in range(7):
            assert f"Bin-{bin_index}" in text

    def test_contains_key_voltages(self):
        text = render_table1(nexus5_table())
        assert "1100" in text  # bin-0 @ 2265
        assert "950" in text  # bin-6 @ 2265


class TestTable2:
    def test_rendering(self):
        rows = {
            "Nexus 5": ("SD-800", 4, 0.14, 0.19),
            "LG G5": ("SD-820", 5, 0.04, 0.10),
        }
        text = render_table2(rows)
        assert "SD-800" in text
        assert "14%" in text
        assert "19%" in text
        assert "LG G5" in text


class TestBars:
    def test_normalized_bars(self):
        text = render_normalized_bars({"bin-0": 900.0, "bin-3": 790.0}, "performance")
        assert "bin-0" in text
        assert "1.000" in text

    def test_render_experiment_performance(self):
        text = render_experiment(experiment(), metric="performance")
        assert "UNCONSTRAINED" in text
        assert "bin-0" in text

    def test_render_experiment_energy(self):
        text = render_experiment(experiment(), metric="energy")
        assert "energy" in text

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            render_experiment(experiment(), metric="latency")


class TestEfficiencyFigure:
    def test_rendering(self):
        points = [
            EfficiencyPoint(
                model="Nexus 5", soc="SD-800", year=2013,
                mean_iters_per_kj=650.0, per_unit=(("bin-0", 650.0),),
            ),
            EfficiencyPoint(
                model="Nexus 6", soc="SD-805", year=2014,
                mean_iters_per_kj=500.0, per_unit=(("n6-a", 500.0),),
            ),
        ]
        text = render_efficiency(points)
        assert "SD-800" in text
        assert "SD-805" in text

    def test_empty(self):
        assert "no efficiency data" in render_efficiency([])
