"""The ACCUBENCH protocol state machine."""

import pytest

from repro.core.experiments import fixed_frequency, unconstrained
from repro.core.protocol import Accubench
from repro.device.catalog import device_spec
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.errors import ProtocolError
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.instruments.thermabox import Thermabox


@pytest.fixture
def bench(fast_config) -> Accubench:
    return Accubench(fast_config.with_traces())


def monsoon_device(model="Nexus 5", index=0):
    device = build_device(PAPER_FLEETS[model][index])
    device.connect_supply(MonsoonPowerMonitor(device.spec.battery.nominal_v))
    return device


class TestRunIteration:
    def test_unconstrained_iteration(self, bench):
        device = monsoon_device()
        result = bench.run_iteration(device, unconstrained())
        assert result.workload == "UNCONSTRAINED"
        assert result.iterations_completed > 0
        assert result.energy_j > 0
        assert result.mean_power_w > 0.5
        assert result.serial == "bin-0"

    def test_phases_annotated_in_order(self, bench):
        device = monsoon_device()
        result = bench.run_iteration(device, unconstrained())
        names = [p.name for p in result.trace.phases]
        assert names == ["warmup", "cooldown", "workload"]

    def test_workload_duration_respected(self, bench):
        device = monsoon_device()
        result = bench.run_iteration(device, unconstrained())
        span = result.trace.phase("workload")
        assert span.duration_s == pytest.approx(bench.config.workload_s, abs=1.0)

    def test_energy_counts_workload_only(self, bench):
        # Mean power x workload duration must equal the energy integral:
        # the counters were reset at workload start.
        device = monsoon_device()
        result = bench.run_iteration(device, unconstrained())
        assert result.energy_j == pytest.approx(
            result.mean_power_w * bench.config.workload_s, rel=0.01
        )

    def test_fixed_frequency_iteration_pins_clock(self, bench):
        device = monsoon_device()
        spec = fixed_frequency(device_spec("Nexus 5"))
        result = bench.run_iteration(device, spec)
        assert result.mean_freq_mhz == pytest.approx(960.0)
        assert result.time_throttled_s == 0.0

    def test_fixed_frequency_does_less_work(self, bench):
        device_a = monsoon_device()
        device_b = monsoon_device()
        fast = bench.run_iteration(device_a, unconstrained())
        slow = bench.run_iteration(device_b, fixed_frequency(device_spec("Nexus 5")))
        assert slow.iterations_completed < fast.iterations_completed

    def test_battery_powered_run_meters_energy(self, bench):
        # The paper compared battery power against the Monsoon (Fig 10);
        # any supply with cumulative energy accounting works.
        device = build_device(PAPER_FLEETS["Nexus 5"][0])  # battery powered
        result = bench.run_iteration(device, unconstrained())
        assert result.energy_j > 0

    def test_unmetered_supply_rejected(self, bench):
        class RawSupply:
            output_voltage_v = 3.8

            def draw(self, power_w, dt):
                return power_w / self.output_voltage_v

        device = build_device(PAPER_FLEETS["Nexus 5"][0])
        device.connect_supply(RawSupply())
        with pytest.raises(ProtocolError):
            bench.run_iteration(device, unconstrained())

    def test_cooldown_waits_for_target(self, bench):
        device = monsoon_device()
        # Pre-heat the device so the cooldown has real work to do.
        device.thermal.settle_to(60.0)
        result = bench.run_iteration(device, unconstrained())
        assert result.cooldown_s > 0.0

    def test_device_left_idle_after_iteration(self, bench):
        device = monsoon_device()
        bench.run_iteration(device, unconstrained())
        assert device.is_asleep

    def test_runs_inside_chamber(self, bench):
        device = monsoon_device()
        chamber = Thermabox(initial_temp_c=26.0)
        result = bench.run_iteration(device, unconstrained(), chamber=chamber)
        assert result.iterations_completed > 0
        assert chamber.is_within_band()

    def test_traces_dropped_when_not_requested(self, fast_config):
        bench = Accubench(fast_config)  # keep_traces=False
        result = bench.run_iteration(monsoon_device(), unconstrained())
        assert result.trace is None


class TestRunFixedWork:
    def test_completes_requested_work(self, bench):
        device = monsoon_device()
        result = bench.run_fixed_work(device, work_iterations=30.0)
        assert result.energy_j > 0
        # iterations_completed holds the time-to-completion for fixed work.
        assert result.iterations_completed > 0

    def test_leakier_bin_needs_more_energy(self, bench):
        bin0 = monsoon_device(index=0)
        bin3 = monsoon_device(index=3)
        e0 = bench.run_fixed_work(bin0, 30.0, skip_conditioning=True).energy_j
        e3 = bench.run_fixed_work(bin3, 30.0, skip_conditioning=True).energy_j
        assert e3 > e0

    def test_bad_work_rejected(self, bench):
        with pytest.raises(ProtocolError):
            bench.run_fixed_work(monsoon_device(), work_iterations=0.0)

    def test_conditioning_runs_by_default(self, bench):
        device = monsoon_device()
        result = bench.run_fixed_work(device, 10.0)
        names = [p.name for p in result.trace.phases]
        assert names[0] == "warmup"
