"""Experiment specifications."""

import pytest

from repro.core.experiments import (
    FIXED_FREQUENCY,
    UNCONSTRAINED,
    ExperimentSpec,
    fixed_frequency,
    unconstrained,
)
from repro.device.catalog import device_spec
from repro.errors import ConfigurationError


class TestUnconstrained:
    def test_factory(self):
        spec = unconstrained()
        assert spec.name == UNCONSTRAINED
        assert spec.is_unconstrained
        assert spec.fixed_freq_mhz is None

    def test_rejects_fixed_frequency(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(name=UNCONSTRAINED, fixed_freq_mhz=960.0)


class TestFixedFrequency:
    def test_uses_device_calibrated_frequency(self):
        spec = fixed_frequency(device_spec("Nexus 5"))
        assert spec.name == FIXED_FREQUENCY
        assert spec.fixed_freq_mhz == 960.0
        assert not spec.is_unconstrained

    def test_override(self):
        spec = fixed_frequency(device_spec("Nexus 5"), freq_mhz=729.0)
        assert spec.fixed_freq_mhz == 729.0

    def test_requires_frequency(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(name=FIXED_FREQUENCY)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(name=FIXED_FREQUENCY, fixed_freq_mhz=0.0)


class TestValidation:
    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(name="TURBO")
