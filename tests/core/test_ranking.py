"""Device ranking."""

import pytest

from repro.core.ranking import place_unit, quality_score, rank_units
from repro.core.results import DeviceResult, IterationResult
from repro.errors import AnalysisError


def device(serial, perf, energy):
    it = IterationResult(
        model="Google Pixel", serial=serial, workload="UNCONSTRAINED",
        iterations_completed=perf, energy_j=energy, mean_power_w=1.0,
        mean_freq_mhz=2000.0, max_cpu_temp_c=75.0, cooldown_s=0.0,
        time_throttled_s=0.0,
    )
    return DeviceResult(
        model="Google Pixel", serial=serial, workload="UNCONSTRAINED",
        iterations=(it,),
    )


class TestQualityScore:
    def test_faster_scores_higher(self):
        assert quality_score(1100.0, 500.0) > quality_score(1000.0, 500.0)

    def test_leaner_scores_higher(self):
        assert quality_score(1000.0, 450.0) > quality_score(1000.0, 500.0)

    def test_performance_weight_extremes(self):
        perf_only = quality_score(1100.0, 900.0, performance_weight=1.0)
        assert perf_only == pytest.approx(1100.0)
        energy_only = quality_score(1100.0, 900.0, performance_weight=0.0)
        assert energy_only == pytest.approx(1.0 / 900.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            quality_score(0.0, 500.0)
        with pytest.raises(AnalysisError):
            quality_score(1000.0, -1.0)
        with pytest.raises(AnalysisError):
            quality_score(1000.0, 500.0, performance_weight=1.5)


class TestRankUnits:
    @pytest.fixture
    def population(self):
        return [
            device("device-488", 1050.0, 470.0),
            device("device-520", 1000.0, 485.0),
            device("device-653", 960.0, 515.0),
        ]

    def test_best_first(self, population):
        ranked = rank_units(population)
        assert [r.serial for r in ranked] == [
            "device-488", "device-520", "device-653",
        ]

    def test_ranks_and_percentiles(self, population):
        ranked = rank_units(population)
        assert [r.rank for r in ranked] == [1, 2, 3]
        assert ranked[0].percentile == 100.0
        assert ranked[-1].percentile == 0.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            rank_units([])


class TestPlaceUnit:
    def test_best_unit_placement(self):
        population = [device("a", 900.0, 550.0), device("b", 950.0, 520.0)]
        newcomer = device("mine", 1100.0, 450.0)
        placed = place_unit(newcomer, population)
        assert placed.rank == 1
        assert placed.percentile == 100.0

    def test_worst_unit_placement(self):
        population = [device("a", 1100.0, 450.0), device("b", 1050.0, 470.0)]
        newcomer = device("mine", 800.0, 600.0)
        placed = place_unit(newcomer, population)
        assert placed.rank == 3
        assert placed.percentile == 0.0

    def test_empty_population_rejected(self):
        with pytest.raises(AnalysisError):
            place_unit(device("mine", 1.0, 1.0), [])
