"""Distribution analysis (Figures 11/12)."""

import pytest

from repro.core.distributions import compare_pair, summarize_workload
from repro.errors import AnalysisError
from repro.sim.trace import Trace


def make_trace(freqs, temps, dt=1.0):
    trace = Trace(["freq", "cpu_temp"])
    trace.begin_phase("workload", 0.0)
    for i, (f, t) in enumerate(zip(freqs, temps)):
        trace.record(i * dt, freq=f, cpu_temp=t)
    trace.end_phase(len(freqs) * dt)
    return trace


class TestSummarize:
    def test_mean_frequency(self):
        trace = make_trace([2000.0, 2100.0, 2200.0], [60.0, 65.0, 70.0])
        summary = summarize_workload(trace, "device-488")
        assert summary.mean_freq_mhz == pytest.approx(2100.0)
        assert summary.serial == "device-488"

    def test_temperature_stats(self):
        trace = make_trace([2000.0] * 4, [60.0, 70.0, 75.0, 71.0])
        summary = summarize_workload(trace, "x", hot_threshold_c=70.0)
        assert summary.max_temp_c == 75.0
        assert summary.mean_temp_c == pytest.approx(69.0)
        assert summary.time_above_hot_s == pytest.approx(3.0)

    def test_percentiles_ordered(self):
        trace = make_trace(list(range(1000, 2000, 100)), [60.0] * 10)
        summary = summarize_workload(trace, "x")
        assert summary.freq_p10_mhz <= summary.mean_freq_mhz <= summary.freq_p90_mhz

    def test_histograms_returned(self):
        trace = make_trace([2000.0, 2100.0] * 10, [60.0, 61.0] * 10)
        summary = summarize_workload(trace, "x", bins=8)
        counts, edges = summary.freq_histogram
        assert counts.sum() == 20
        assert len(edges) == 9

    def test_empty_workload_rejected(self):
        trace = Trace(["freq", "cpu_temp"])
        trace.begin_phase("workload", 0.0)
        trace.end_phase(0.0)
        with pytest.raises(AnalysisError):
            summarize_workload(trace, "x")


class TestComparePair:
    def test_orders_by_mean_frequency(self):
        fast = summarize_workload(
            make_trace([2200.0] * 5, [70.0] * 5), "device-488"
        )
        slow = summarize_workload(
            make_trace([2000.0] * 5, [65.0] * 5), "device-653"
        )
        comparison = compare_pair(slow, fast)
        assert comparison.faster.serial == "device-488"
        assert comparison.slower.serial == "device-653"

    def test_mean_freq_delta(self):
        fast = summarize_workload(make_trace([2140.0] * 5, [70.0] * 5), "a")
        slow = summarize_workload(make_trace([2000.0] * 5, [65.0] * 5), "b")
        assert compare_pair(fast, slow).mean_freq_delta == pytest.approx(0.07)

    def test_hotter_is_faster_flag(self):
        # The paper's counterintuitive Pixel case: the faster unit spent
        # MORE time at high temperature.
        fast_hot = summarize_workload(
            make_trace([2200.0] * 5, [75.0] * 5), "hot-fast", hot_threshold_c=70.0
        )
        slow_cool = summarize_workload(
            make_trace([2000.0] * 5, [60.0] * 5), "cool-slow", hot_threshold_c=70.0
        )
        assert compare_pair(fast_hot, slow_cool).hotter_is_faster

    def test_conventional_case_flag_false(self):
        fast_cool = summarize_workload(
            make_trace([2200.0] * 5, [60.0] * 5), "a", hot_threshold_c=70.0
        )
        slow_hot = summarize_workload(
            make_trace([2000.0] * 5, [75.0] * 5), "b", hot_threshold_c=70.0
        )
        assert not compare_pair(fast_cool, slow_hot).hotter_is_faster
