"""Campaign telemetry: collection is observable and never perturbs physics.

The contract: an enabled metrics registry fills with engine counters,
phase spans and per-task wall times — from serial and pooled runs alike —
while the campaign's :class:`DeviceResult`s stay bit-identical to an
uninstrumented run.
"""

import json

import pytest

from repro.core.config import AccubenchConfig
from repro.core.experiments import unconstrained
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.core.serialize import experiment_to_dict
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.obs import MetricsRegistry, TaskProgress, aggregate_spans, use_registry

MODEL = "Nexus 5"

#: Keys every campaign metrics document must carry, even at zero.
REQUIRED_COUNTERS = (
    "engine.steps",
    "engine.fast_forward_steps",
    "engine.fast_forward_windows",
    "engine.throttle_events",
    "propagator.cache_hits",
    "propagator.cache_misses",
    "thermabox.heater_duty_s",
    "tasks.completed",
)


def tiny_config(jobs: int = 1, **overrides) -> CampaignConfig:
    return CampaignConfig(
        accubench=AccubenchConfig().scaled(0.05), jobs=jobs, **overrides
    )


def fleet_digest(result) -> str:
    return json.dumps(experiment_to_dict(result), sort_keys=True)


def collected_run(jobs: int, progress=None):
    registry = MetricsRegistry(enabled=True)
    runner = CampaignRunner(tiny_config(), progress=progress)
    with use_registry(registry):
        result = runner.run_fleet(MODEL, unconstrained(), iterations=1, jobs=jobs)
    return result, registry.snapshot()


class TestResultsUnperturbed:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_identical_with_and_without_collection(self, jobs):
        baseline = CampaignRunner(tiny_config()).run_fleet(
            MODEL, unconstrained(), iterations=1, jobs=jobs
        )
        collected, _ = collected_run(jobs)
        assert fleet_digest(collected) == fleet_digest(baseline)


class TestDocumentContents:
    def test_serial_run_fills_required_schema(self):
        _, snapshot = collected_run(jobs=1)
        for key in REQUIRED_COUNTERS:
            assert key in snapshot["counters"], key
        assert snapshot["counters"]["engine.steps"] > 0
        assert snapshot["counters"]["tasks.completed"] == len(PAPER_FLEETS[MODEL])
        spans = aggregate_spans(snapshot)
        for phase in ("phase.warmup", "phase.cooldown", "phase.workload"):
            assert spans[phase]["count"] == len(PAPER_FLEETS[MODEL])
            assert spans[phase]["sim_s"] > 0
        # Per-task wall times: one run_device span and one histogram
        # observation per unit.
        assert spans["run_device"]["count"] == len(PAPER_FLEETS[MODEL])
        assert snapshot["histograms"]["task.wall_s"]["count"] == len(
            PAPER_FLEETS[MODEL]
        )

    def test_sim_time_accounting_is_consistent(self):
        _, snapshot = collected_run(jobs=1)
        counters = snapshot["counters"]
        dt = AccubenchConfig().dt
        stepped = counters["engine.steps"] + counters["engine.fast_forward_steps"]
        assert counters["engine.sim_time_s"] == pytest.approx(stepped * dt)


class TestWorkerMerge:
    def test_pool_run_merges_worker_registries(self):
        serial_result, serial_snapshot = collected_run(jobs=1)
        pooled_result, pooled_snapshot = collected_run(jobs=2)
        assert fleet_digest(pooled_result) == fleet_digest(serial_result)
        # The physics counters are deterministic, so the merged document
        # must agree exactly with the serial one.  transport.* counters
        # measure how results travelled, which depends on the backend the
        # jobs count resolves to — excluded like the wall-clock metrics.
        def physics(snapshot):
            return {
                name: value
                for name, value in snapshot["counters"].items()
                if not name.startswith("transport.")
            }

        assert physics(pooled_snapshot) == physics(serial_snapshot)
        assert aggregate_spans(pooled_snapshot).keys() == aggregate_spans(
            serial_snapshot
        ).keys()
        assert (
            pooled_snapshot["histograms"]["task.wall_s"]["count"]
            == serial_snapshot["histograms"]["task.wall_s"]["count"]
        )


class TestProgress:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_one_event_per_task_in_completion_order(self, jobs):
        events = []
        result, _ = collected_run(jobs, progress=events.append)
        total = len(PAPER_FLEETS[MODEL])
        assert len(events) == total
        assert all(isinstance(event, TaskProgress) for event in events)
        assert [event.completed for event in events] == list(range(1, total + 1))
        assert {event.index for event in events} == set(range(total))
        assert {event.serial for event in events} == set(result.serials)
        assert all(event.total == total for event in events)
        assert all(event.wall_s > 0 for event in events)

    def test_progress_without_metrics_collection(self):
        # --progress must not require --metrics-out.
        events = []
        runner = CampaignRunner(tiny_config(), progress=events.append)
        runner.run_fleet(MODEL, unconstrained(), iterations=1, jobs=1)
        assert len(events) == len(PAPER_FLEETS[MODEL])


class TestPropagatorCacheTelemetry:
    def test_cooldown_heavy_run_reports_high_hit_rate(self):
        # A case-soaked device on the expm solver spends almost all its
        # steps asking for the same two step sizes (engine dt, poll
        # window) — the (Φ, Ψ) cache must be serving nearly every call.
        config = CampaignConfig(
            accubench=AccubenchConfig(
                warmup_s=20.0,
                workload_s=15.0,
                iterations=1,
                cooldown_target_c=32.0,
                thermal_solver="expm",
            ),
            use_thermabox=False,
        )
        device = build_device(
            PAPER_FLEETS[MODEL][0], thermal_solver="expm", initial_temp_c=55.0
        )
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            CampaignRunner(config).run_device(device, unconstrained())
        counters = registry.snapshot()["counters"]
        hits = counters["propagator.cache_hits"]
        misses = counters["propagator.cache_misses"]
        assert hits + misses > 0
        assert hits / (hits + misses) > 0.9
        assert device.thermal.propagator.cache_hit_rate > 0.9
        assert counters["engine.fast_forward_windows"] > 0
        assert counters["engine.fast_forward_steps"] > 0
