"""Unsupervised bin discovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import choose_k, kmeans, silhouette_score
from repro.errors import AnalysisError

WELL_SEPARATED = [
    [1.0, 1.0], [1.1, 0.9], [0.9, 1.05],
    [5.0, 5.0], [5.1, 4.9], [4.9, 5.2],
    [9.0, 9.0], [9.2, 8.9], [8.8, 9.1],
]


class TestKmeans:
    def test_recovers_obvious_clusters(self):
        result = kmeans(WELL_SEPARATED, k=3, seed=1)
        groups = [
            {result.assignments[i] for i in range(0, 3)},
            {result.assignments[i] for i in range(3, 6)},
            {result.assignments[i] for i in range(6, 9)},
        ]
        assert all(len(group) == 1 for group in groups)
        assert len(set.union(*groups)) == 3

    def test_deterministic(self):
        a = kmeans(WELL_SEPARATED, k=3, seed=7)
        b = kmeans(WELL_SEPARATED, k=3, seed=7)
        assert a.assignments == b.assignments

    def test_k1_groups_everything(self):
        result = kmeans(WELL_SEPARATED, k=1, seed=0)
        assert set(result.assignments) == {0}

    def test_k_equals_n(self):
        result = kmeans(WELL_SEPARATED[:4], k=4, seed=0)
        assert len(set(result.assignments)) == 4
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_inertia_decreases_with_k(self):
        inertias = [kmeans(WELL_SEPARATED, k=k, seed=2).inertia for k in (1, 3)]
        assert inertias[1] < inertias[0]

    def test_bad_k_rejected(self):
        with pytest.raises(AnalysisError):
            kmeans(WELL_SEPARATED, k=0)
        with pytest.raises(AnalysisError):
            kmeans(WELL_SEPARATED, k=10)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            kmeans([], k=1)

    def test_identical_points_handled(self):
        result = kmeans([[1.0, 1.0]] * 5, k=2, seed=0)
        assert len(result.assignments) == 5

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-10, max_value=10),
                st.floats(min_value=-10, max_value=10),
            ),
            min_size=4,
            max_size=20,
        )
    )
    def test_every_point_assigned_within_k(self, points):
        result = kmeans([list(p) for p in points], k=2, seed=3)
        assert len(result.assignments) == len(points)
        assert all(0 <= a < 2 for a in result.assignments)


class TestSilhouette:
    def test_good_clustering_scores_high(self):
        result = kmeans(WELL_SEPARATED, k=3, seed=1)
        assert silhouette_score(WELL_SEPARATED, result) > 0.7

    def test_k1_scores_zero(self):
        result = kmeans(WELL_SEPARATED, k=1, seed=1)
        assert silhouette_score(WELL_SEPARATED, result) == 0.0

    def test_wrong_k_scores_lower(self):
        right = kmeans(WELL_SEPARATED, k=3, seed=1)
        wrong = kmeans(WELL_SEPARATED, k=2, seed=1)
        assert silhouette_score(WELL_SEPARATED, right) > silhouette_score(
            WELL_SEPARATED, wrong
        )


class TestChooseK:
    def test_finds_three_clusters(self):
        k, result = choose_k(WELL_SEPARATED, seed=1)
        assert k == 3
        assert len(set(result.assignments)) == 3

    def test_explicit_range(self):
        k, _ = choose_k(WELL_SEPARATED, k_range=[2, 3], seed=1)
        assert k == 3

    def test_too_few_units_rejected(self):
        with pytest.raises(AnalysisError):
            choose_k([[1.0], [2.0]])
