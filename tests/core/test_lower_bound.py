"""Fleet-size lower-bound analysis (§VII)."""

import pytest

from repro.core.lower_bound import (
    expected_variation,
    fleet_size_curve,
    undersampling_factor,
)
from repro.errors import AnalysisError

POPULATION = [
    1000.0, 992.0, 985.0, 978.0, 970.0, 961.0, 955.0, 948.0,
    940.0, 931.0, 925.0, 918.0, 910.0, 901.0, 895.0, 888.0,
]


class TestExpectedVariation:
    def test_full_population_is_exact(self):
        full = expected_variation(POPULATION, len(POPULATION), resamples=50)
        assert full == pytest.approx((1000.0 - 888.0) / 888.0)

    def test_small_fleets_understate(self):
        small = expected_variation(POPULATION, 3, resamples=800, seed=2)
        full = (1000.0 - 888.0) / 888.0
        assert small < full

    def test_monotone_in_fleet_size(self):
        curve = fleet_size_curve(POPULATION, sizes=[2, 4, 8, 16], resamples=800)
        values = [curve[n] for n in (2, 4, 8, 16)]
        assert values == sorted(values)

    def test_deterministic(self):
        a = expected_variation(POPULATION, 4, resamples=200, seed=9)
        b = expected_variation(POPULATION, 4, resamples=200, seed=9)
        assert a == b

    def test_bad_fleet_size_rejected(self):
        with pytest.raises(AnalysisError):
            expected_variation(POPULATION, 1)
        with pytest.raises(AnalysisError):
            expected_variation(POPULATION, 17)

    def test_tiny_population_rejected(self):
        with pytest.raises(AnalysisError):
            expected_variation([5.0], 2)


class TestUndersamplingFactor:
    def test_factor_at_least_one(self):
        factor = undersampling_factor(POPULATION, 3, resamples=800)
        assert factor > 1.0

    def test_factor_shrinks_with_bigger_studies(self):
        small = undersampling_factor(POPULATION, 3, resamples=800)
        large = undersampling_factor(POPULATION, 12, resamples=800)
        assert large < small

    def test_uniform_population_rejected(self):
        with pytest.raises(AnalysisError):
            undersampling_factor([5.0] * 8, 3, resamples=50)


class TestCurve:
    def test_empty_sizes_rejected(self):
        with pytest.raises(AnalysisError):
            fleet_size_curve(POPULATION, sizes=[])
