"""Efficiency analysis (Figure 13)."""

import pytest

from repro.core.efficiency import (
    EfficiencyPoint,
    efficiency_point,
    efficiency_series,
    relative_to_first,
    sd805_regression,
)
from repro.core.results import DeviceResult, ExperimentResult, IterationResult
from repro.errors import AnalysisError


def experiment(model, perf, energy):
    it = IterationResult(
        model=model, serial="u1", workload="UNCONSTRAINED",
        iterations_completed=perf, energy_j=energy, mean_power_w=1.0,
        mean_freq_mhz=2000.0, max_cpu_temp_c=75.0, cooldown_s=0.0,
        time_throttled_s=0.0,
    )
    device = DeviceResult(
        model=model, serial="u1", workload="UNCONSTRAINED", iterations=(it,)
    )
    return ExperimentResult(model=model, workload="UNCONSTRAINED", devices=(device,))


def point(soc, year, iters_per_kj):
    return EfficiencyPoint(
        model=soc, soc=soc, year=year,
        mean_iters_per_kj=iters_per_kj, per_unit=(("u1", iters_per_kj),),
    )


class TestEfficiencyPoint:
    def test_from_experiment(self):
        result = experiment("Nexus 5", perf=800.0, energy=400.0)
        p = efficiency_point(result, "SD-800", 2013)
        assert p.mean_iters_per_kj == pytest.approx(2000.0)
        assert p.soc == "SD-800"
        assert p.per_unit == (("u1", pytest.approx(2000.0)),)


class TestSeries:
    def test_generation_ordering(self):
        points = [point("SD-820", 2016, 900.0), point("SD-800", 2013, 650.0)]
        ordered = efficiency_series(points)
        assert [p.soc for p in ordered] == ["SD-800", "SD-820"]

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            efficiency_series([])

    def test_relative_to_first(self):
        points = [point("SD-800", 2013, 650.0), point("SD-805", 2014, 500.0)]
        relative = relative_to_first(points)
        assert relative["SD-800"] == 1.0
        assert relative["SD-805"] == pytest.approx(500.0 / 650.0)


class TestSd805Regression:
    def test_detects_regression(self):
        points = [point("SD-800", 2013, 650.0), point("SD-805", 2014, 500.0)]
        assert sd805_regression(points)

    def test_no_regression(self):
        points = [point("SD-800", 2013, 650.0), point("SD-805", 2014, 700.0)]
        assert not sd805_regression(points)

    def test_missing_soc_rejected(self):
        with pytest.raises(AnalysisError):
            sd805_regression([point("SD-800", 2013, 650.0)])
