"""Campaign runner."""

import pytest

from repro.core.experiments import fixed_frequency, unconstrained
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.device.catalog import device_spec
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.errors import ConfigurationError


class TestMonsoonVoltagePolicy:
    def test_default_is_nominal(self, fast_runner):
        assert fast_runner.monsoon_voltage_for(device_spec("Nexus 5")) == 3.8

    def test_g5_gets_max_voltage(self, fast_runner):
        # The paper's Figure 10 lesson: powering the G5 at nominal 3.85 V
        # trips its input-voltage throttle, so the study used 4.4 V.
        assert fast_runner.monsoon_voltage_for(device_spec("LG G5")) == 4.4

    def test_explicit_override_wins(self, fast_config):
        runner = CampaignRunner(
            CampaignConfig(accubench=fast_config, monsoon_voltage=4.2)
        )
        assert runner.monsoon_voltage_for(device_spec("LG G5")) == 4.2


class TestRunDevice:
    def test_runs_requested_iterations(self, fast_runner):
        device = build_device(PAPER_FLEETS["Nexus 5"][0])
        result = fast_runner.run_device(device, unconstrained(), iterations=3)
        assert len(result.iterations) == 3
        assert result.serial == "bin-0"

    def test_zero_iterations_rejected(self, fast_runner):
        device = build_device(PAPER_FLEETS["Nexus 5"][0])
        with pytest.raises(ConfigurationError):
            fast_runner.run_device(device, unconstrained(), iterations=0)

    def test_connects_monsoon(self, fast_runner):
        device = build_device(PAPER_FLEETS["Nexus 5"][0])
        fast_runner.run_device(device, unconstrained(), iterations=1)
        from repro.instruments.monsoon import MonsoonPowerMonitor

        assert isinstance(device.supply, MonsoonPowerMonitor)


class TestRunFleet:
    def test_paper_fleet_by_default(self, fast_runner):
        result = fast_runner.run_fleet("Nexus 5", unconstrained(), iterations=1)
        assert result.serials == ("bin-0", "bin-1", "bin-2", "bin-3")
        assert result.model == "Nexus 5"

    def test_explicit_devices(self, fast_runner):
        devices = [build_device(PAPER_FLEETS["Nexus 5"][i]) for i in (0, 3)]
        result = fast_runner.run_fleet(
            "Nexus 5", unconstrained(), devices=devices, iterations=1
        )
        assert result.serials == ("bin-0", "bin-3")

    def test_bin0_beats_bin3_even_at_test_scale(self, fast_runner):
        devices = [build_device(PAPER_FLEETS["Nexus 5"][i]) for i in (0, 3)]
        # Pre-soak hot so even the short test workload throttles.
        for device in devices:
            device.thermal.settle_to(70.0)
        result = fast_runner.run_fleet(
            "Nexus 5", unconstrained(), devices=devices, iterations=1
        )
        assert result.best_serial == "bin-0"

    def test_fixed_frequency_fleet_does_equal_work(self, fast_runner):
        result = fast_runner.run_fleet(
            "Nexus 5",
            fixed_frequency(device_spec("Nexus 5")),
            iterations=1,
        )
        perfs = list(result.performances().values())
        assert max(perfs) / min(perfs) < 1.05


class TestThermabox:
    def test_chamber_campaign_runs(self, fast_config):
        runner = CampaignRunner(
            CampaignConfig(accubench=fast_config, use_thermabox=True)
        )
        device = build_device(PAPER_FLEETS["Nexus 5"][0])
        result = runner.run_device(device, unconstrained(), iterations=1)
        assert result.performance > 0

    def test_ambient_override_without_chamber(self, fast_runner):
        device = build_device(PAPER_FLEETS["Nexus 5"][0], initial_temp_c=35.0)
        result = fast_runner.run_device(
            device, unconstrained(), ambient_c=35.0, iterations=1
        )
        assert result.performance > 0


class TestCampaignConfigValidation:
    """NaN and unphysical environment values fail at construction."""

    NAN = float("nan")

    @pytest.mark.parametrize("field", ["ambient_c", "room_temp_c"])
    def test_nan_environment_rejected_with_field_name(self, field):
        with pytest.raises(ConfigurationError, match=field):
            CampaignConfig(**{field: self.NAN})

    @pytest.mark.parametrize("field", ["ambient_c", "room_temp_c"])
    def test_negative_environment_rejected(self, field):
        with pytest.raises(ConfigurationError):
            CampaignConfig(**{field: -3.0})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0.0, -3.8])
    def test_bad_monsoon_voltage_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            CampaignConfig(monsoon_voltage=bad)

    def test_none_monsoon_voltage_means_per_model_policy(self):
        assert CampaignConfig(monsoon_voltage=None).monsoon_voltage is None
