"""Streaming estimators vs exact in-memory computation.

Every estimator in :mod:`repro.core.streaming` is checked against the
batch statistic it approximates, on the shared ``values`` strategy from
:mod:`repro.check.strategies`; permutation-invariance is asserted exactly
where the math guarantees it (counts, extremes, reservoir membership) and
within float tolerance where summation order matters.  The JSON
round-trip tests pin the checkpoint contract: serialize mid-stream,
restore, keep folding — bit-identical to never having stopped.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.check.strategies import values
from repro.core.streaming import (
    DEFAULT_QUANTILES,
    BinRecoveryCounter,
    P2Quantile,
    QuantileBank,
    RankingReservoir,
    StreamingMoments,
)
from repro.core.crowd import spearman_rank_correlation
from repro.errors import AnalysisError, ConfigurationError
from repro.rng import derive_stream


def roundtrip(estimator):
    """Serialize through actual JSON text, as the checkpoint file does."""
    state = json.loads(json.dumps(estimator.state_dict()))
    return type(estimator).from_state(state)


class TestStreamingMoments:
    @settings(max_examples=50, deadline=None)
    @given(values)
    def test_matches_numpy(self, xs):
        moments = StreamingMoments()
        for x in xs:
            moments.add(x)
        arr = np.asarray(xs)
        assert moments.count == len(xs)
        assert moments.mean == pytest.approx(float(arr.mean()), rel=1e-9, abs=1e-9)
        assert moments.variance == pytest.approx(
            float(arr.var()), rel=1e-6, abs=1e-6
        )
        assert moments.std == pytest.approx(float(arr.std()), rel=1e-6, abs=1e-6)
        assert moments.min == float(arr.min())
        assert moments.max == float(arr.max())

    @settings(max_examples=50, deadline=None)
    @given(values)
    def test_extremes_permutation_invariant(self, xs):
        forward, backward = StreamingMoments(), StreamingMoments()
        for x in xs:
            forward.add(x)
        for x in reversed(xs):
            backward.add(x)
        # count/min/max are exactly order-free; mean/variance only up to
        # summation order.
        assert forward.count == backward.count
        assert forward.min == backward.min
        assert forward.max == backward.max
        assert forward.mean == pytest.approx(backward.mean, rel=1e-9, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(values, values)
    def test_json_roundtrip_continuation_is_bit_identical(self, head, tail):
        uninterrupted = StreamingMoments()
        for x in head + tail:
            uninterrupted.add(x)
        resumed = StreamingMoments()
        for x in head:
            resumed.add(x)
        resumed = roundtrip(resumed)
        for x in tail:
            resumed.add(x)
        assert resumed.state_dict() == uninterrupted.state_dict()

    def test_empty(self):
        moments = StreamingMoments()
        assert moments.count == 0
        assert moments.variance == 0.0
        assert math.isinf(moments.min)
        assert roundtrip(moments).state_dict() == moments.state_dict()


class TestP2Quantile:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=5,
        ),
        st.sampled_from(DEFAULT_QUANTILES),
    )
    def test_exact_up_to_five_samples(self, xs, q):
        estimator = P2Quantile(q)
        for x in xs:
            estimator.add(x)
        assert estimator.estimate() == pytest.approx(
            float(np.quantile(np.asarray(xs), q)), rel=1e-12, abs=1e-12
        )

    @pytest.mark.parametrize("q", DEFAULT_QUANTILES)
    def test_tracks_uniform_stream(self, q):
        rng = derive_stream(0, "test", "p2", str(q))
        xs = rng.uniform(0.0, 100.0, size=2000)
        estimator = P2Quantile(q)
        for x in xs:
            estimator.add(x)
        exact = float(np.quantile(xs, q))
        assert estimator.estimate() == pytest.approx(exact, abs=3.0)
        assert float(xs.min()) <= estimator.estimate() <= float(xs.max())

    @settings(max_examples=30, deadline=None)
    @given(values, values)
    def test_json_roundtrip_continuation_is_bit_identical(self, head, tail):
        uninterrupted = P2Quantile(0.5)
        for x in head + tail:
            uninterrupted.add(x)
        resumed = P2Quantile(0.5)
        for x in head:
            resumed.add(x)
        resumed = roundtrip(resumed)
        for x in tail:
            resumed.add(x)
        assert resumed.state_dict() == uninterrupted.state_dict()

    def test_rejects_degenerate_quantiles(self):
        for q in (0.0, 1.0, -0.1):
            with pytest.raises(ConfigurationError):
                P2Quantile(q)

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            P2Quantile(0.5).estimate()


class TestQuantileBank:
    def test_keys_and_estimates(self):
        bank = QuantileBank()
        for x in range(1, 101):
            bank.add(float(x))
        estimates = bank.estimates()
        assert sorted(estimates) == ["p05", "p25", "p50", "p75", "p95"]
        assert estimates["p50"] == pytest.approx(50.5, abs=3.0)
        assert estimates["p05"] < estimates["p50"] < estimates["p95"]

    def test_json_roundtrip(self):
        bank = QuantileBank()
        for x in (3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0):
            bank.add(x)
        assert roundtrip(bank).estimates() == bank.estimates()


class TestRankingReservoir:
    @settings(max_examples=50, deadline=None)
    @given(values)
    def test_exact_while_stream_fits(self, xs):
        rng = derive_stream(0, "test", "reservoir")
        state_before = json.dumps(rng.bit_generator.state, default=str)
        reservoir = RankingReservoir(len(xs), rng)
        scores = [float(i) for i in range(len(xs))]
        for truth, score in zip(xs, scores):
            reservoir.add(truth, score)
        assert reservoir.is_exact
        # Filling the reservoir consumes no randomness (the differential
        # gate's precondition for exact small-N agreement).
        assert json.dumps(rng.bit_generator.state, default=str) == state_before
        expected = None
        try:
            expected = spearman_rank_correlation(xs, scores)
        except AnalysisError:
            pass
        assert reservoir.correlation() == (
            pytest.approx(expected) if expected is not None else None
        )

    def test_overflow_keeps_capacity_and_is_deterministic(self):
        def build():
            reservoir = RankingReservoir(
                8, derive_stream(0, "test", "reservoir-overflow")
            )
            for i in range(1000):
                reservoir.add(float(i), float(i % 17))
            return reservoir

        first, second = build(), build()
        assert first.seen == 1000 and not first.is_exact
        assert len(first.state_dict()["pairs"]) == 8
        assert first.state_dict() == second.state_dict()

    def test_json_roundtrip_continuation_is_bit_identical(self):
        rng = derive_stream(0, "test", "reservoir-resume")
        uninterrupted = RankingReservoir(8, rng)
        for i in range(200):
            uninterrupted.add(float(i), float((i * 7) % 31))

        resumed = RankingReservoir(8, derive_stream(0, "test", "reservoir-resume"))
        for i in range(90):
            resumed.add(float(i), float((i * 7) % 31))
        resumed = roundtrip(resumed)
        for i in range(90, 200):
            resumed.add(float(i), float((i * 7) % 31))
        assert resumed.state_dict() == uninterrupted.state_dict()

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ConfigurationError):
            RankingReservoir(2, derive_stream(0, "test", "tiny"))

    def test_too_few_pairs_returns_none(self):
        reservoir = RankingReservoir(8, derive_stream(0, "test", "few"))
        reservoir.add(1.0, 2.0)
        assert reservoir.correlation() is None


class TestBinRecoveryCounter:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            ),
            min_size=0,
            max_size=40,
        )
    )
    def test_counts_and_means_match_exact(self, pairs):
        counter = BinRecoveryCounter()
        for bin_index, score in pairs:
            counter.add(bin_index, score)
        exact = {}
        for bin_index, score in pairs:
            exact.setdefault(bin_index, []).append(score)
        assert counter.counts == {b: len(v) for b, v in sorted(exact.items())}
        for bin_index, mean in counter.mean_scores().items():
            assert mean == pytest.approx(
                float(np.mean(exact[bin_index])), rel=1e-9, abs=1e-9
            )

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            ),
            min_size=0,
            max_size=40,
        )
    )
    def test_counts_permutation_invariant(self, pairs):
        forward, backward = BinRecoveryCounter(), BinRecoveryCounter()
        for bin_index, score in pairs:
            forward.add(bin_index, score)
        for bin_index, score in reversed(pairs):
            backward.add(bin_index, score)
        assert forward.counts == backward.counts

    def test_ordering_quality(self):
        counter = BinRecoveryCounter()
        # Higher bins leakier → faster: a perfectly recovered ordering.
        for bin_index in range(4):
            for _ in range(3):
                counter.add(bin_index, 100.0 + 10.0 * bin_index)
        assert counter.ordering_quality() == pytest.approx(1.0)

    def test_needs_three_bins(self):
        counter = BinRecoveryCounter()
        counter.add(0, 1.0)
        counter.add(1, 2.0)
        assert counter.ordering_quality() is None

    def test_json_roundtrip_continuation_is_bit_identical(self):
        stream = [(i % 5, float((i * 13) % 97)) for i in range(60)]
        uninterrupted = BinRecoveryCounter()
        for bin_index, score in stream:
            uninterrupted.add(bin_index, score)
        resumed = BinRecoveryCounter()
        for bin_index, score in stream[:25]:
            resumed.add(bin_index, score)
        resumed = roundtrip(resumed)
        for bin_index, score in stream[25:]:
            resumed.add(bin_index, score)
        assert resumed.state_dict() == uninterrupted.state_dict()
