"""Property tests for the crowd-study statistics.

The ``values`` strategy is shared from :mod:`repro.check.strategies`.
"""

from typing import List, Sequence

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.check.strategies import values
from repro.core.crowd import average_ranks, spearman_rank_correlation
from repro.errors import AnalysisError


def _reference_spearman(
    first: Sequence[float], second: Sequence[float]
) -> float:
    """The previous pure-Python implementation, kept verbatim as the
    equivalence oracle for the vectorized replacement (exact tie
    semantics included)."""
    if len(first) != len(second):
        raise AnalysisError("sequences must be paired")
    if len(first) < 3:
        raise AnalysisError("need at least 3 pairs for a rank correlation")

    def ranks(values: Sequence[float]) -> List[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        result = [0.0] * len(values)
        i = 0
        while i < len(order):
            j = i
            while (
                j + 1 < len(order)
                and values[order[j + 1]] == values[order[i]]
            ):
                j += 1
            mean_rank = (i + j) / 2.0 + 1.0
            for k in range(i, j + 1):
                result[order[k]] = mean_rank
            i = j + 1
        return result

    ra, rb = ranks(list(first)), ranks(list(second))
    mean_a = sum(ra) / len(ra)
    mean_b = sum(rb) / len(rb)
    cov = sum((a - mean_a) * (b - mean_b) for a, b in zip(ra, rb))
    var_a = sum((a - mean_a) ** 2 for a in ra)
    var_b = sum((b - mean_b) ** 2 for b in rb)
    if var_a == 0 or var_b == 0:
        raise AnalysisError("rank correlation undefined for constant input")
    return cov / (var_a * var_b) ** 0.5


class TestSpearmanProperties:
    @settings(max_examples=50, deadline=None)
    @given(values)
    def test_self_correlation_is_one(self, xs):
        if len(set(xs)) < 2:
            return  # constant input is rejected by design
        assert spearman_rank_correlation(xs, xs) == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(values)
    def test_reversal_negates(self, xs):
        if len(set(xs)) < 2:
            return
        ys = list(reversed(xs))
        forward = spearman_rank_correlation(xs, list(range(len(xs))))
        backward = spearman_rank_correlation(ys, list(range(len(xs))))
        assert forward == pytest.approx(-backward, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(values)
    def test_bounded(self, xs):
        if len(set(xs)) < 2:
            return
        rho = spearman_rank_correlation(xs, list(range(len(xs))))
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-10_000, max_value=10_000),
            min_size=3,
            max_size=25,
        ),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_monotone_transform_invariant(self, xs, scale):
        # Integer inputs so the affine transform cannot collapse distinct
        # values through float rounding (which would legitimately change
        # the ranks).
        if len(set(xs)) < 2:
            return
        index = list(range(len(xs)))
        raw = spearman_rank_correlation([float(x) for x in xs], index)
        transformed = spearman_rank_correlation(
            [scale * x + 7.0 for x in xs], index
        )
        assert transformed == pytest.approx(raw, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(values)
    def test_symmetry(self, xs):
        if len(set(xs)) < 2:
            return
        index = list(range(len(xs)))
        assert spearman_rank_correlation(xs, index) == pytest.approx(
            spearman_rank_correlation(index, xs), abs=1e-9
        )


#: Value lists rich in exact ties, where rank semantics can actually differ.
tied_values = st.lists(
    st.integers(min_value=-5, max_value=5).map(float),
    min_size=3,
    max_size=25,
)


class TestVectorizedSpearmanEquivalence:
    """The numpy implementation vs the retired pure-Python one."""

    @settings(max_examples=100, deadline=None)
    @given(values, values)
    def test_matches_reference(self, xs, ys):
        ys = ys[: len(xs)] + xs[len(ys):]  # pair up lengths
        if len(set(xs)) < 2 or len(set(ys)) < 2:
            return
        assert spearman_rank_correlation(xs, ys) == pytest.approx(
            _reference_spearman(xs, ys), abs=1e-12
        )

    @settings(max_examples=100, deadline=None)
    @given(tied_values, tied_values)
    def test_matches_reference_under_heavy_ties(self, xs, ys):
        ys = ys[: len(xs)] + xs[len(ys):]
        if len(set(xs)) < 2 or len(set(ys)) < 2:
            return
        assert spearman_rank_correlation(xs, ys) == pytest.approx(
            _reference_spearman(xs, ys), abs=1e-12
        )

    @settings(max_examples=100, deadline=None)
    @given(tied_values)
    def test_average_ranks_tie_semantics_exact(self, xs):
        # The vectorized ranks must agree with the loop bit-for-bit: both
        # assign every tie group the mean of its 1-based positions, which
        # is exactly representable for the sizes in play.
        expected = [0.0] * len(xs)
        order = sorted(range(len(xs)), key=lambda i: xs[i])
        i = 0
        while i < len(order):
            j = i
            while j + 1 < len(order) and xs[order[j + 1]] == xs[order[i]]:
                j += 1
            for k in range(i, j + 1):
                expected[order[k]] = (i + j) / 2.0 + 1.0
            i = j + 1
        assert average_ranks(xs).tolist() == expected

    def test_error_messages_preserved(self):
        with pytest.raises(AnalysisError, match="must be paired"):
            spearman_rank_correlation([1.0, 2.0, 3.0], [1.0, 2.0])
        with pytest.raises(AnalysisError, match="at least 3 pairs"):
            spearman_rank_correlation([1.0, 2.0], [1.0, 2.0])
        with pytest.raises(AnalysisError, match="constant input"):
            spearman_rank_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])

    def test_large_input_is_fast_and_exact(self):
        rng = np.random.default_rng(7)
        xs = rng.integers(0, 50, size=5000).astype(float)
        ys = (xs * 0.5 + rng.integers(0, 10, size=5000)).astype(float)
        vec = spearman_rank_correlation(xs.tolist(), ys.tolist())
        ref = _reference_spearman(xs.tolist(), ys.tolist())
        assert vec == pytest.approx(ref, abs=1e-12)
