"""Property tests for the crowd-study statistics.

The ``values`` strategy is shared from :mod:`repro.check.strategies`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.check.strategies import values
from repro.core.crowd import spearman_rank_correlation


class TestSpearmanProperties:
    @settings(max_examples=50, deadline=None)
    @given(values)
    def test_self_correlation_is_one(self, xs):
        if len(set(xs)) < 2:
            return  # constant input is rejected by design
        assert spearman_rank_correlation(xs, xs) == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(values)
    def test_reversal_negates(self, xs):
        if len(set(xs)) < 2:
            return
        ys = list(reversed(xs))
        forward = spearman_rank_correlation(xs, list(range(len(xs))))
        backward = spearman_rank_correlation(ys, list(range(len(xs))))
        assert forward == pytest.approx(-backward, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(values)
    def test_bounded(self, xs):
        if len(set(xs)) < 2:
            return
        rho = spearman_rank_correlation(xs, list(range(len(xs))))
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-10_000, max_value=10_000),
            min_size=3,
            max_size=25,
        ),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_monotone_transform_invariant(self, xs, scale):
        # Integer inputs so the affine transform cannot collapse distinct
        # values through float rounding (which would legitimately change
        # the ranks).
        if len(set(xs)) < 2:
            return
        index = list(range(len(xs)))
        raw = spearman_rank_correlation([float(x) for x in xs], index)
        transformed = spearman_rank_correlation(
            [scale * x + 7.0 for x in xs], index
        )
        assert transformed == pytest.approx(raw, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(values)
    def test_symmetry(self, xs):
        if len(set(xs)) < 2:
            return
        index = list(range(len(xs)))
        assert spearman_rank_correlation(xs, index) == pytest.approx(
            spearman_rank_correlation(index, xs), abs=1e-9
        )
