"""Paper targets and acceptance bands."""

from repro.core.paper_targets import (
    FIG6_ENERGY_SAVING_BIN0,
    FIG6_PERF_BIN0_OVER_BIN3,
    FIG10_G5_THROTTLE_FRACTION,
    FIG11_PIXEL_PERF_DELTA,
    FIG12_NEXUS5_PERF_DELTA,
    TABLE2_TARGETS,
    in_band,
)


class TestTable2Targets:
    def test_all_five_models_present(self):
        assert set(TABLE2_TARGETS) == {
            "Nexus 5", "Nexus 6", "Nexus 6P", "LG G5", "Google Pixel",
        }

    def test_values_match_paper_table2(self):
        t = TABLE2_TARGETS
        assert (t["Nexus 5"].performance, t["Nexus 5"].energy) == (0.14, 0.19)
        assert (t["Nexus 6"].performance, t["Nexus 6"].energy) == (0.02, 0.02)
        assert (t["Nexus 6P"].performance, t["Nexus 6P"].energy) == (0.10, 0.12)
        assert (t["LG G5"].performance, t["LG G5"].energy) == (0.04, 0.10)
        assert (t["Google Pixel"].performance, t["Google Pixel"].energy) == (
            0.05, 0.09,
        )

    def test_device_counts_match_paper(self):
        counts = {m: t.device_count for m, t in TABLE2_TARGETS.items()}
        assert counts == {
            "Nexus 5": 4, "Nexus 6": 3, "Nexus 6P": 3,
            "LG G5": 5, "Google Pixel": 3,
        }

    def test_paper_values_inside_their_own_bands(self):
        for target in TABLE2_TARGETS.values():
            assert in_band(target.performance, target.performance_band)
            assert in_band(target.energy, target.energy_band)


class TestHeadlineConstants:
    def test_figure_headlines(self):
        assert FIG6_PERF_BIN0_OVER_BIN3 == 0.14
        assert FIG6_ENERGY_SAVING_BIN0 == 0.19
        assert FIG11_PIXEL_PERF_DELTA == 0.07
        assert FIG12_NEXUS5_PERF_DELTA == 0.11
        assert FIG10_G5_THROTTLE_FRACTION == 0.20

    def test_in_band_edges(self):
        assert in_band(0.1, (0.1, 0.2))
        assert in_band(0.2, (0.1, 0.2))
        assert not in_band(0.21, (0.1, 0.2))
