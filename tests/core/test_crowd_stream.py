"""The streaming crowd engine vs the serial §VI reference.

Everything here runs the micro field protocol from the differential
harness (exact solver, short windows) so the whole file stays CI-sized.
The headline contracts:

* streamed submissions replay the serial pipeline draw-for-draw;
* an interrupted campaign resumed from its checkpoint is bit-identical
  to an uninterrupted one;
* worker count never changes results;
* drop accounting matches the serial path reason-for-reason.
"""

import json
import os

import numpy as np
import pytest

from repro.check.differential import default_crowd_differential_config
from repro.core.ambient_estimation import DEFAULT_PROBE_POLL_S
from repro.core.crowd import (
    CrowdConfig,
    crowd_fleet,
    crowd_param_stream,
    plan_users,
    prepare_field_device,
    run_crowd_study,
)
from repro.core.crowd_stream import (
    CrowdEstimators,
    execute_cohort,
    load_checkpoint,
    run_streaming_crowd_study,
)
from repro.errors import ConfigurationError
from repro.sim.batch import BatchedWorld
from repro.sim.engine import World
from repro.thermal.ambient import ConstantAmbient

from dataclasses import replace


@pytest.fixture(scope="module")
def micro_config():
    return default_crowd_differential_config(user_count=8)


@pytest.fixture(scope="module")
def full_run(micro_config):
    submissions = []
    result = run_streaming_crowd_study(
        micro_config, cohort_size=3, on_submission=submissions.append
    )
    return result, submissions


class TestStreamedMatchesSerial:
    def test_submissions_replay_serial_draw_for_draw(
        self, micro_config, full_run
    ):
        result, streamed = full_run
        serial = run_crowd_study(micro_config)
        assert [s.serial for s in streamed] == [s.serial for s in serial]
        for a, b in zip(serial, streamed):
            assert b.score == pytest.approx(a.score, rel=1e-9)
            assert b.energy_j == pytest.approx(a.energy_j, rel=1e-9)
            assert b.ambient_estimate.ambient_c == pytest.approx(
                a.ambient_estimate.ambient_c, abs=1e-9
            )
            assert (
                b.ambient_estimate.sample_count
                == a.ambient_estimate.sample_count
            )
            assert b.true_ambient_c == a.true_ambient_c
            assert b.true_leak_factor == a.true_leak_factor
        assert result.dropped == serial.dropped
        assert result.users_simulated == serial.users

    def test_result_summary_shape(self, micro_config, full_run):
        result, streamed = full_run
        assert result.complete
        assert result.cohorts_total == 3  # ceil(8 / 3)
        assert result.user_count == micro_config.user_count
        assert result.submission_count == len(streamed)
        assert sorted(result.score_quantiles) == [
            "p05", "p25", "p50", "p75", "p95",
        ]
        document = json.loads(json.dumps(result.to_dict()))
        assert document["users_simulated"] == micro_config.user_count

    def test_jobs_do_not_change_results(self, micro_config, full_run):
        result, _ = full_run
        parallel = run_streaming_crowd_study(
            micro_config, cohort_size=3, jobs=2
        )
        assert parallel.to_dict() == result.to_dict()


class TestCheckpointResume:
    def test_interrupt_and_resume_is_bit_identical(
        self, micro_config, full_run, tmp_path
    ):
        result, _ = full_run
        path = str(tmp_path / "crowd.ckpt")
        partial = run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path,
            stop_after_cohorts=2,
        )
        assert not partial.complete
        assert partial.cohorts_completed == 2
        assert os.path.exists(path)
        resumed = run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path
        )
        assert resumed.complete
        assert resumed.resumed_from_cohort == 2
        expected = dict(result.to_dict(), resumed_from_cohort=2)
        assert resumed.to_dict() == expected

    def test_checkpoint_is_valid_json_with_rng_cursor(
        self, micro_config, tmp_path
    ):
        path = str(tmp_path / "crowd.ckpt")
        run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path,
            stop_after_cohorts=1,
        )
        with open(path) as fp:
            document = json.load(fp)
        assert document["cohorts_done"] == 1
        # The stored cursor equals the parameter stream advanced past
        # exactly the folded cohort's users (2 uniforms per user).
        rng = crowd_param_stream(micro_config)
        plan_users(micro_config, rng, 0, 3)
        assert document["param_rng_state"] == json.loads(
            json.dumps(rng.bit_generator.state)
        )
        restored = CrowdEstimators.from_state(document["estimators"])
        assert restored.users_done == 3

    def test_mismatched_fingerprint_refuses(self, micro_config, tmp_path):
        path = str(tmp_path / "crowd.ckpt")
        run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path,
            stop_after_cohorts=1,
        )
        other = replace(micro_config, user_count=9)
        with pytest.raises(ConfigurationError):
            run_streaming_crowd_study(other, cohort_size=3, checkpoint_path=path)
        with pytest.raises(ConfigurationError):
            load_checkpoint(path, "not-the-fingerprint")


class TestMixedModelResume:
    """Heterogeneous populations checkpoint and resume like uniform ones.

    With ``models`` cycling per user index, every 3-user cohort holds two
    models, so ``execute_cohort`` runs a genuinely mixed
    :class:`~repro.sim.batch.BatchedWorld` — and the checkpoint cursor
    (2 uniforms per user, model choice index-pure) must replay across it.
    """

    def test_mixed_cohorts_resume_bit_identically_for_any_jobs(self, tmp_path):
        config = replace(
            default_crowd_differential_config(user_count=8),
            models=("Nexus 5", "Nexus 6"),
        )
        fleet_models = [device.spec.name for device in crowd_fleet(config)]
        assert fleet_models == ["Nexus 5", "Nexus 6"] * 4

        baseline = run_streaming_crowd_study(config, cohort_size=3)
        assert baseline.complete
        assert baseline.model == "Nexus 5+Nexus 6"

        path = str(tmp_path / "mixed.ckpt")
        partial = run_streaming_crowd_study(
            config, cohort_size=3, checkpoint_path=path, stop_after_cohorts=2
        )
        assert not partial.complete
        assert partial.cohorts_completed == 2
        with open(path) as fp:
            saved = fp.read()

        for jobs in (1, 2, 4):
            job_path = str(tmp_path / f"mixed-jobs{jobs}.ckpt")
            with open(job_path, "w") as fp:
                fp.write(saved)
            resumed = run_streaming_crowd_study(
                config, cohort_size=3, checkpoint_path=job_path, jobs=jobs
            )
            assert resumed.complete
            assert resumed.resumed_from_cohort == 2
            expected = dict(baseline.to_dict(), resumed_from_cohort=2)
            assert resumed.to_dict() == expected


class TestExecutionBackends:
    """The pluggable backend never shows in crowd results or checkpoints."""

    def test_backend_does_not_change_results(self, micro_config, full_run):
        result, _ = full_run
        for backend in ("in-process", "process-pool", "shared-memory"):
            run = run_streaming_crowd_study(
                micro_config, cohort_size=3, jobs=2, backend=backend
            )
            assert run.to_dict() == result.to_dict(), backend

    def test_config_backend_drives_execution(self, micro_config, full_run):
        result, _ = full_run
        configured = replace(micro_config, backend="shared-memory")
        run = run_streaming_crowd_study(configured, cohort_size=3, jobs=2)
        assert run.to_dict() == result.to_dict()

    def test_kill_and_resume_on_shared_memory_backend(
        self, micro_config, full_run, tmp_path
    ):
        # Interrupt a shared-memory campaign mid-flight (the checkpoint
        # idiom for a kill: stop after 2 folded cohorts, worker pool torn
        # down with completions still pending) and resume on the same
        # backend — bit-identical to the uninterrupted serial reference.
        result, _ = full_run
        path = str(tmp_path / "crowd-shm.ckpt")
        partial = run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path,
            stop_after_cohorts=2, jobs=2, backend="shared-memory",
        )
        assert not partial.complete
        assert partial.cohorts_completed == 2
        resumed = run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path,
            jobs=2, backend="shared-memory",
        )
        assert resumed.complete
        assert resumed.resumed_from_cohort == 2
        expected = dict(result.to_dict(), resumed_from_cohort=2)
        assert resumed.to_dict() == expected

    def test_checkpoint_resumes_across_backends(
        self, micro_config, full_run, tmp_path
    ):
        # The backend is excluded from the checkpoint fingerprint: a
        # checkpoint written under the default backend resumes under
        # shared-memory, because transport cannot change the results.
        result, _ = full_run
        path = str(tmp_path / "cross.ckpt")
        run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path,
            stop_after_cohorts=1,
        )
        resumed = run_streaming_crowd_study(
            micro_config, cohort_size=3, checkpoint_path=path,
            jobs=2, backend="shared-memory",
        )
        assert resumed.complete
        assert resumed.resumed_from_cohort == 1
        expected = dict(result.to_dict(), resumed_from_cohort=1)
        assert resumed.to_dict() == expected

    def test_rejects_unknown_backend(self, micro_config):
        with pytest.raises(ConfigurationError):
            run_streaming_crowd_study(micro_config, backend="bogus")
        with pytest.raises(ConfigurationError):
            CrowdConfig(backend="bogus")


class TestDropAccounting:
    def test_short_observe_drops_everyone_like_serial(self, micro_config):
        # 50 s of 5 s polls → 10 samples, 6 after the 40% head skip —
        # below the fit's floor, so every probe fails identically.
        config = replace(micro_config, user_count=4, probe_observe_s=50.0)
        serial = run_crowd_study(config)
        result = run_streaming_crowd_study(config, cohort_size=2)
        assert serial.dropped == {"too_few_samples": 4}
        assert result.dropped == serial.dropped
        assert result.submission_count == len(serial) == 0
        assert result.users_simulated == 4
        assert result.score_quantiles == {}
        assert result.ranking_quality_raw is None


class TestGuards:
    def test_requires_exact_solver(self, micro_config):
        euler = replace(
            micro_config,
            protocol=replace(micro_config.protocol, thermal_solver="euler"),
        )
        with pytest.raises(ConfigurationError):
            run_streaming_crowd_study(euler)

    def test_rejects_bad_knobs(self, micro_config):
        with pytest.raises(ConfigurationError):
            run_streaming_crowd_study(micro_config, cohort_size=0)
        with pytest.raises(ConfigurationError):
            run_streaming_crowd_study(micro_config, jobs=0)
        with pytest.raises(ConfigurationError):
            run_streaming_crowd_study(micro_config, checkpoint_every=0)
        with pytest.raises(ConfigurationError):
            run_streaming_crowd_study(micro_config, stop_after_cohorts=0)

    def test_cohort_must_be_contiguous(self, micro_config):
        rng = crowd_param_stream(micro_config)
        users = plan_users(micro_config, rng, 0, 4)
        with pytest.raises(ConfigurationError):
            execute_cohort(
                micro_config, 0, (users[0], users[2], users[3])
            )
        with pytest.raises(ConfigurationError):
            execute_cohort(micro_config, 0, ())


class TestBatchedFieldPhysics:
    """The batched battery bank and asleep probe vs per-unit worlds."""

    def test_probe_temps_and_battery_state_match_serial(self, micro_config):
        config = replace(micro_config, user_count=3)
        rng = crowd_param_stream(config)
        users = plan_users(config, rng, 0, config.user_count)

        serial_temps, serial_soc, serial_energy = [], [], []
        for device, user in zip(crowd_fleet(config), users):
            prepare_field_device(device, user)
            world = World(
                device,
                room=ConstantAmbient(user.ambient_c),
                dt=config.protocol.dt,
                trace_decimation=1,
            )
            device.acquire_wakelock()
            device.start_load()
            world.run_for(config.probe_heat_s)
            device.stop_load()
            device.release_wakelock()
            temps = []
            elapsed = 0.0
            while elapsed < config.probe_observe_s:
                world.run_for(DEFAULT_PROBE_POLL_S)
                elapsed += DEFAULT_PROBE_POLL_S
                temps.append(device.read_cpu_temp())
            serial_temps.append(temps)
            serial_soc.append(device.supply.state_of_charge)
            serial_energy.append(device.supply.energy_drawn_j)

        devices = crowd_fleet(config)
        for device, user in zip(devices, users):
            prepare_field_device(device, user)
        world = BatchedWorld(
            devices,
            room_temp_c=np.array([u.ambient_c for u in users]),
            dt=config.protocol.dt,
            trace_decimation=1,
        )
        world.acquire_wakelock()
        world.start_load()
        world.run_for(config.probe_heat_s)
        world.stop_load()
        world.release_wakelock()
        batched_temps = []
        elapsed = 0.0
        while elapsed < config.probe_observe_s:
            world.run_asleep(DEFAULT_PROBE_POLL_S)
            elapsed += DEFAULT_PROBE_POLL_S
            batched_temps.append(world.read_sensors())
        world.finalize()

        for i, device in enumerate(devices):
            # Quantized sensor reads replay exactly, draw for draw.
            assert [row[i] for row in batched_temps] == serial_temps[i]
            # Battery accounting: the batched probe draws each asleep poll
            # window as one macro draw where the serial engine steps dt by
            # dt — identical up to float summation order.
            assert device.supply.state_of_charge == pytest.approx(
                serial_soc[i], abs=1e-12
            )
            assert device.supply.energy_drawn_j == pytest.approx(
                serial_energy[i], rel=1e-9
            )

    def test_per_unit_rooms_reject_chamber(self, micro_config):
        from repro.instruments.thermabox import (
            BatchedThermabox,
            ThermaboxConfig,
        )
        from repro.errors import SimulationError

        config = replace(micro_config, user_count=2)
        rng = crowd_param_stream(config)
        users = plan_users(config, rng, 0, 2)
        devices = crowd_fleet(config)
        for device, user in zip(devices, users):
            prepare_field_device(device, user)
        chamber = BatchedThermabox(
            ThermaboxConfig(target_c=25.0), count=2, initial_temp_c=25.0
        )
        with pytest.raises(SimulationError):
            BatchedWorld(
                devices,
                room_temp_c=np.array([20.0, 30.0]),
                chamber=chamber,
                dt=0.5,
            )
