"""Parallel campaign execution: determinism and plumbing.

The contract under test (see :mod:`repro.core.parallel`) is that the
worker count is invisible in the results: any ``jobs`` value yields
byte-identical output to the serial path.
"""

import json

import pytest

from repro.core.config import AccubenchConfig
from repro.core.experiments import unconstrained
from repro.core.parallel import DeviceTask, run_tasks
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.core.serialize import device_to_dict, experiment_to_dict
from repro.device.fleet import synthetic_fleet
from repro.errors import ConfigurationError

MODEL = "Nexus 5"


def tiny_config(jobs: int = 1) -> CampaignConfig:
    return CampaignConfig(accubench=AccubenchConfig().scaled(0.05), jobs=jobs)


def fleet_digest(result) -> str:
    return json.dumps(experiment_to_dict(result), sort_keys=True)


@pytest.fixture(scope="module")
def serial_fleet_digest() -> str:
    runner = CampaignRunner(tiny_config())
    result = runner.run_fleet(MODEL, unconstrained(), iterations=2, jobs=1)
    return fleet_digest(result)


class TestDeterminism:
    @pytest.mark.parametrize("jobs", [2, 3, 4, 8])
    def test_fleet_identical_across_worker_counts(self, serial_fleet_digest, jobs):
        runner = CampaignRunner(tiny_config())
        result = runner.run_fleet(MODEL, unconstrained(), iterations=2, jobs=jobs)
        assert fleet_digest(result) == serial_fleet_digest

    def test_config_jobs_drives_fleet(self, serial_fleet_digest):
        runner = CampaignRunner(tiny_config(jobs=2))
        result = runner.run_fleet(MODEL, unconstrained(), iterations=2)
        assert fleet_digest(result) == serial_fleet_digest

    def test_caller_devices_identical_across_worker_counts(self):
        digests = []
        for jobs in (1, 3):
            runner = CampaignRunner(tiny_config())
            fleet = synthetic_fleet(MODEL, count=3, root_seed=99)
            result = runner.run_fleet(
                MODEL, unconstrained(), devices=fleet, iterations=2, jobs=jobs
            )
            digests.append(fleet_digest(result))
        assert digests[0] == digests[1]

    def test_synthetic_profiles_independent_of_build_order(self):
        # Per-unit derived streams: the sampled silicon of unit k does not
        # depend on how many units are built or in what order.
        few = synthetic_fleet(MODEL, count=2, root_seed=7)
        many = synthetic_fleet(MODEL, count=5, root_seed=7)
        for a, b in zip(few, many):
            assert a.serial == b.serial
            assert a.profile == b.profile

    def test_run_tasks_identical_across_worker_counts(self):
        # Directly at the run_tasks level: completion order is whatever
        # the pool delivers, but reassembly is by submission index, so
        # the returned list is invariant in both order and values.
        digests = []
        for jobs in (1, 2, 4):
            fleet = synthetic_fleet(MODEL, count=4, root_seed=11)
            tasks = [
                DeviceTask(
                    device=device,
                    experiment=unconstrained(),
                    config=tiny_config(),
                    iterations=1,
                )
                for device in fleet
            ]
            results = run_tasks(tasks, jobs=jobs)
            assert [r.serial for r in results] == [d.serial for d in fleet]
            digests.append(
                [json.dumps(device_to_dict(r), sort_keys=True) for r in results]
            )
        assert digests[0] == digests[1] == digests[2]

    def test_run_model_parallel_matches_serial(self):
        runner = CampaignRunner(tiny_config())
        serial = runner.run_model(MODEL, jobs=1)
        parallel = runner.run_model(MODEL, jobs=2)
        for s, p in zip(serial, parallel):
            assert fleet_digest(s) == fleet_digest(p)

    def test_run_study_parallel_matches_serial(self):
        runner = CampaignRunner(tiny_config())
        serial = runner.run_study(models=[MODEL], jobs=1)
        parallel = runner.run_study(models=[MODEL], jobs=2)
        assert list(serial) == list(parallel)
        for model in serial:
            for s, p in zip(serial[model], parallel[model]):
                assert fleet_digest(s) == fleet_digest(p)


class TestMergedTelemetry:
    def counters_for(self, jobs: int):
        from repro.obs.metrics import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry(enabled=True)) as registry:
            runner = CampaignRunner(tiny_config())
            runner.run_fleet(MODEL, unconstrained(), iterations=1, jobs=jobs)
        counters = registry.snapshot()["counters"]
        # transport.* counters measure how results travelled (pickle vs
        # shared memory), which legitimately depends on the backend the
        # jobs count resolves to — strip them like the wall-clock metrics.
        return {
            name: value
            for name, value in counters.items()
            if not name.startswith("transport.")
        }

    def test_merged_counters_identical_across_worker_counts(self):
        # Worker registries are snapshotted and folded back into the
        # parent; deterministic counts (steps, iterations, draws) must
        # not depend on how the fleet was sharded.  Spans and histograms
        # carry wall-clock durations, so only counters are comparable.
        serial = self.counters_for(1)
        assert serial, "expected the run to record at least one counter"
        assert self.counters_for(3) == serial
        assert self.counters_for(8) == serial


class TestPlumbing:
    def test_negative_jobs_rejected_in_config(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(jobs=-1)

    def test_negative_jobs_rejected_per_call(self):
        runner = CampaignRunner(tiny_config())
        with pytest.raises(ConfigurationError):
            runner.run_fleet(MODEL, unconstrained(), jobs=-2)

    def test_jobs_zero_means_all_cores(self):
        runner = CampaignRunner(tiny_config())
        assert runner._resolve_jobs(0) >= 1

    def test_run_tasks_requires_positive_jobs(self):
        with pytest.raises(ConfigurationError):
            run_tasks([], jobs=0)

    def test_serial_path_mutates_caller_devices(self):
        # jobs=1 bypasses the pool: the caller's device objects are the
        # ones that ran, exactly as in the historical serial loop.
        runner = CampaignRunner(tiny_config())
        fleet = synthetic_fleet(MODEL, count=1, root_seed=5)
        runner.run_fleet(MODEL, unconstrained(), devices=fleet, iterations=1, jobs=1)
        assert fleet[0].now_s > 0.0

    def test_pool_path_leaves_caller_devices_untouched(self):
        runner = CampaignRunner(tiny_config())
        fleet = synthetic_fleet(MODEL, count=2, root_seed=5)
        runner.run_fleet(MODEL, unconstrained(), devices=fleet, iterations=1, jobs=2)
        assert all(device.now_s == 0.0 for device in fleet)

    def test_device_task_runs_standalone(self):
        config = tiny_config()
        fleet = synthetic_fleet(MODEL, count=1, root_seed=5)
        task = DeviceTask(
            device=fleet[0],
            experiment=unconstrained(),
            config=config,
            iterations=1,
        )
        (result,) = run_tasks([task], jobs=1)
        assert result.model == MODEL
        assert len(result.iterations) == 1
