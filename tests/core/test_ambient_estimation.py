"""Cooldown-based ambient estimation (paper §VI)."""

import numpy as np
import pytest

from repro.core.ambient_estimation import (
    AmbientEstimate,
    cooldown_probe,
    estimate_ambient,
    estimate_from_trace,
)
from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.errors import AnalysisError
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.thermal.ambient import ConstantAmbient


def synthetic_decay(ambient=26.0, start=60.0, tau=300.0, n=120, dt=5.0, noise=0.0):
    times = np.arange(n) * dt
    temps = ambient + (start - ambient) * np.exp(-times / tau)
    if noise:
        temps = temps + np.random.default_rng(3).normal(0, noise, n)
    return times, temps


class TestSyntheticDecay:
    def test_recovers_exact_asymptote(self):
        times, temps = synthetic_decay(ambient=26.0)
        estimate = estimate_ambient(times, temps)
        assert estimate.ambient_c == pytest.approx(26.0, abs=0.05)
        assert estimate.time_constant_s == pytest.approx(300.0, rel=0.02)
        assert estimate.r_squared > 0.999

    def test_recovers_other_ambients(self):
        for ambient in (10.0, 26.0, 38.0):
            times, temps = synthetic_decay(ambient=ambient)
            estimate = estimate_ambient(times, temps)
            assert estimate.ambient_c == pytest.approx(ambient, abs=0.2)

    def test_noise_tolerated(self):
        times, temps = synthetic_decay(noise=0.05)
        estimate = estimate_ambient(times, temps)
        assert estimate.ambient_c == pytest.approx(26.0, abs=1.0)

    def test_confidence_flag(self):
        times, temps = synthetic_decay()
        assert estimate_ambient(times, temps).is_confident()
        _, noisy = synthetic_decay(noise=3.0)
        estimate = estimate_ambient(times, noisy)
        assert not estimate.is_confident()

    def test_flat_series_rejected(self):
        times = np.arange(50) * 5.0
        temps = np.full(50, 26.0)
        with pytest.raises(AnalysisError):
            estimate_ambient(times, temps)

    def test_heating_series_rejected(self):
        times = np.arange(50) * 5.0
        temps = 26.0 + times * 0.1
        with pytest.raises(AnalysisError):
            estimate_ambient(times, temps)

    def test_too_few_samples_rejected(self):
        times, temps = synthetic_decay(n=6)
        with pytest.raises(AnalysisError):
            estimate_ambient(times, temps, skip_fraction=0.0)

    def test_non_uniform_sampling_rejected(self):
        times = np.array([0.0, 5.0, 11.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0])
        temps = 26.0 + 30.0 * np.exp(-times / 200.0)
        with pytest.raises(AnalysisError):
            estimate_ambient(times, temps, skip_fraction=0.0)

    def test_bad_skip_fraction_rejected(self):
        times, temps = synthetic_decay()
        with pytest.raises(AnalysisError):
            estimate_ambient(times, temps, skip_fraction=1.0)


class TestFromProtocolTrace:
    @pytest.fixture(scope="class")
    def traced_run(self):
        """One protocol iteration at a known, uncontrolled ambient."""
        from repro.core.config import AccubenchConfig

        device = build_device(PAPER_FLEETS["Nexus 5"][1], initial_temp_c=31.0)
        device.connect_supply(MonsoonPowerMonitor(3.8))
        config = AccubenchConfig(
            warmup_s=120.0, workload_s=60.0, cooldown_target_c=34.0,
            cooldown_timeout_s=3600.0, dt=0.2, trace_decimation=25,
            keep_traces=True,
        )
        bench = Accubench(config)
        return bench.run_iteration(
            device, unconstrained(), room=ConstantAmbient(31.0)
        )

    def test_trace_estimate_bounded_by_physics(self, traced_run):
        # The protocol's cooldown stops at its target, so the fitted
        # asymptote reflects the still-warm chassis: above the true room,
        # below the phase's own peak.
        estimate = estimate_from_trace(traced_run.trace)
        cooldown_peak = traced_run.trace.phase_column("cooldown", "cpu_temp").max()
        assert 31.0 <= estimate.ambient_c <= cooldown_peak

    def test_fit_is_clean(self, traced_run):
        estimate = estimate_from_trace(traced_run.trace)
        assert estimate.r_squared > 0.9
        assert estimate.time_constant_s > 0


class TestCooldownProbe:
    """The §VI field estimator: a dedicated heat-then-observe cycle."""

    @staticmethod
    def probe_at(ambient_c: float):
        from repro.thermal.ambient import ConstantAmbient as Room

        device = build_device(PAPER_FLEETS["Nexus 5"][1], initial_temp_c=ambient_c)
        device.connect_supply(MonsoonPowerMonitor(3.8))
        return cooldown_probe(device, Room(ambient_c))

    @pytest.fixture(scope="class")
    def estimates(self):
        return {ambient: self.probe_at(ambient) for ambient in (18.0, 26.0, 34.0)}

    def test_absolute_accuracy_encouraging(self, estimates):
        # "Preliminary results ... are encouraging" (§VI): within a few
        # degrees without any calibration.
        for ambient, estimate in estimates.items():
            assert estimate.ambient_c == pytest.approx(ambient, abs=4.0)

    def test_tracks_ambient_linearly(self, estimates):
        # The residual bias is a common offset: differences between rooms
        # are recovered almost exactly, which is what crowd filtering and
        # ranking actually need.
        ambients = sorted(estimates)
        values = [estimates[a].ambient_c for a in ambients]
        spans = [b - a for a, b in zip(values, values[1:])]
        true_spans = [b - a for a, b in zip(ambients, ambients[1:])]
        for measured, true in zip(spans, true_spans):
            assert measured == pytest.approx(true, abs=1.0)

    def test_fits_are_confident(self, estimates):
        for estimate in estimates.values():
            assert estimate.is_confident(min_r_squared=0.9)
