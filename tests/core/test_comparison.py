"""Cross-generation comparison."""

import pytest

from repro.core.comparison import (
    GenerationComparison,
    compare_generations,
    generation_ladder,
)
from repro.core.results import DeviceResult, ExperimentResult, IterationResult
from repro.errors import AnalysisError


def experiment(model, perf, energy, workload="UNCONSTRAINED"):
    it = IterationResult(
        model=model, serial="u1", workload=workload,
        iterations_completed=perf, energy_j=energy,
        mean_power_w=energy / 300.0, mean_freq_mhz=2000.0,
        max_cpu_temp_c=75.0, cooldown_s=0.0, time_throttled_s=0.0,
    )
    device = DeviceResult(
        model=model, serial="u1", workload=workload, iterations=(it,)
    )
    return ExperimentResult(model=model, workload=workload, devices=(device,))


NEXUS5 = experiment("Nexus 5", perf=850.0, energy=1250.0)
# Faster but power-hungrier: the SD-805 pattern.
NEXUS6 = experiment("Nexus 6", perf=1000.0, energy=1950.0)
# Faster AND leaner: a FinFET generation.
PIXEL = experiment("Google Pixel", perf=1050.0, energy=1200.0)


class TestCompareGenerations:
    def test_ratios(self):
        comparison = compare_generations(NEXUS5, NEXUS6)
        assert comparison.performance_ratio == pytest.approx(1000.0 / 850.0)
        assert comparison.power_ratio == pytest.approx(1950.0 / 1250.0)
        eff_old = 850.0 / 1.250
        eff_new = 1000.0 / 1.950
        assert comparison.efficiency_ratio == pytest.approx(eff_new / eff_old)

    def test_sd805_pattern_detected(self):
        comparison = compare_generations(NEXUS5, NEXUS6)
        assert comparison.is_faster
        assert not comparison.is_more_efficient
        assert comparison.is_marketing_regression

    def test_genuine_improvement(self):
        comparison = compare_generations(NEXUS5, PIXEL)
        assert comparison.is_faster
        assert comparison.is_more_efficient
        assert not comparison.is_marketing_regression

    def test_summary_text(self):
        text = compare_generations(NEXUS5, NEXUS6).summary()
        assert "Nexus 6 vs Nexus 5" in text
        assert "marketing regression" in text
        good = compare_generations(NEXUS5, PIXEL).summary()
        assert "genuine improvement" in good

    def test_mismatched_workloads_rejected(self):
        fixed = experiment("Nexus 6", 400.0, 600.0, workload="FIXED-FREQUENCY")
        with pytest.raises(AnalysisError):
            compare_generations(NEXUS5, fixed)


class TestGenerationLadder:
    def test_adjacent_pairs(self):
        ladder = generation_ladder([NEXUS5, NEXUS6, PIXEL])
        assert len(ladder) == 2
        assert ladder[0].newer_model == "Nexus 6"
        assert ladder[1].older_model == "Nexus 6"

    def test_single_generation_rejected(self):
        with pytest.raises(AnalysisError):
            generation_ladder([NEXUS5])


class TestDataclassProperties:
    def test_mixed_result(self):
        mixed = GenerationComparison(
            older_model="a", newer_model="b",
            performance_ratio=0.95, power_ratio=0.7, efficiency_ratio=1.2,
        )
        assert not mixed.is_faster
        assert mixed.is_more_efficient
        assert "mixed result" in mixed.summary()
