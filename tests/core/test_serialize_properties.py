"""Property tests: serialization round-trips for arbitrary results."""

from hypothesis import given, settings, strategies as st

from repro.core.results import DeviceResult, ExperimentResult, IterationResult
from repro.core.serialize import (
    dumps_experiment,
    experiment_from_dict,
    experiment_to_dict,
    load_experiment,
)

finite = st.floats(
    min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False
)
name = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=16
)


@st.composite
def iterations(draw, serial):
    return IterationResult(
        model="Nexus 5",
        serial=serial,
        workload="UNCONSTRAINED",
        iterations_completed=draw(finite),
        energy_j=draw(finite),
        mean_power_w=draw(finite),
        mean_freq_mhz=draw(finite),
        max_cpu_temp_c=draw(st.floats(min_value=-20.0, max_value=120.0)),
        cooldown_s=draw(st.floats(min_value=0.0, max_value=1e5)),
        time_throttled_s=draw(st.floats(min_value=0.0, max_value=1e5)),
    )


@st.composite
def experiments(draw):
    serials = draw(st.lists(name, min_size=1, max_size=4, unique=True))
    devices = []
    for serial in serials:
        its = tuple(
            draw(iterations(serial))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        )
        devices.append(
            DeviceResult(
                model="Nexus 5", serial=serial,
                workload="UNCONSTRAINED", iterations=its,
            )
        )
    return ExperimentResult(
        model="Nexus 5", workload="UNCONSTRAINED", devices=tuple(devices)
    )


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(experiments())
    def test_dict_round_trip_exact(self, experiment):
        assert experiment_from_dict(experiment_to_dict(experiment)) == experiment

    @settings(max_examples=40, deadline=None)
    @given(experiments())
    def test_json_round_trip_exact(self, experiment):
        assert load_experiment(dumps_experiment(experiment)) == experiment

    @settings(max_examples=20, deadline=None)
    @given(experiments())
    def test_derived_metrics_survive(self, experiment):
        restored = load_experiment(dumps_experiment(experiment))
        assert restored.serials == experiment.serials
        if len(experiment.devices) >= 2:
            assert (
                restored.performance_variation == experiment.performance_variation
            )
            assert restored.energy_variation == experiment.energy_variation
