"""Property tests: serialization round-trips for arbitrary results.

Result generators live in :mod:`repro.check.strategies`, shared with the
crowd property tests and the check-harness suite.
"""

from hypothesis import given, settings

from repro.check.strategies import experiments
from repro.core.serialize import (
    dumps_experiment,
    experiment_from_dict,
    experiment_to_dict,
    load_experiment,
)


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(experiments())
    def test_dict_round_trip_exact(self, experiment):
        assert experiment_from_dict(experiment_to_dict(experiment)) == experiment

    @settings(max_examples=40, deadline=None)
    @given(experiments())
    def test_json_round_trip_exact(self, experiment):
        assert load_experiment(dumps_experiment(experiment)) == experiment

    @settings(max_examples=20, deadline=None)
    @given(experiments())
    def test_derived_metrics_survive(self, experiment):
        restored = load_experiment(dumps_experiment(experiment))
        assert restored.serials == experiment.serials
        if len(experiment.devices) >= 2:
            assert (
                restored.performance_variation == experiment.performance_variation
            )
            assert restored.energy_variation == experiment.energy_variation
