"""Unit-conversion helpers."""

import pytest

from repro import units


class TestTemperature:
    def test_celsius_to_kelvin(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_kelvin_to_celsius(self):
        assert units.kelvin_to_celsius(300.0) == pytest.approx(26.85)

    def test_round_trip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(37.2)) == pytest.approx(
            37.2
        )

    def test_paper_ambient_constants(self):
        assert units.PAPER_AMBIENT_C == 26.0
        assert units.PAPER_AMBIENT_TOLERANCE_C == 0.5


class TestVoltage:
    def test_mv_to_v(self):
        assert units.mv_to_v(1100.0) == pytest.approx(1.1)

    def test_v_to_mv(self):
        assert units.v_to_mv(0.95) == pytest.approx(950.0)

    def test_round_trip(self):
        assert units.v_to_mv(units.mv_to_v(835.0)) == pytest.approx(835.0)


class TestFrequency:
    def test_mhz_to_hz(self):
        assert units.mhz_to_hz(2265.0) == pytest.approx(2.265e9)

    def test_hz_to_mhz(self):
        assert units.hz_to_mhz(1.574e9) == pytest.approx(1574.0)


class TestEnergy:
    def test_joules_to_mwh(self):
        assert units.joules_to_mwh(3600.0) == pytest.approx(1000.0)

    def test_mwh_to_joules(self):
        assert units.mwh_to_joules(1.0) == pytest.approx(3.6)

    def test_round_trip(self):
        assert units.mwh_to_joules(units.joules_to_mwh(1234.5)) == pytest.approx(
            1234.5
        )


class TestTime:
    def test_minutes(self):
        assert units.minutes(5) == 300.0

    def test_fractional_minutes(self):
        assert units.minutes(0.5) == 30.0
