"""The device under test."""

import pytest

from repro.device.catalog import device_spec, lg_g5
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.errors import ConfigurationError
from repro.instruments.monsoon import MonsoonPowerMonitor


def monsoon_device(model_unit=("Nexus 5", 0), voltage=None):
    model, index = model_unit
    device = build_device(PAPER_FLEETS[model][index])
    volts = voltage if voltage is not None else device.spec.battery.nominal_v
    device.connect_supply(MonsoonPowerMonitor(volts))
    return device


class TestLifecycle:
    def test_battery_powered_by_default(self):
        device = build_device(PAPER_FLEETS["Nexus 5"][0])
        assert device.supply.output_voltage_v > 3.0

    def test_asleep_without_wakelock_or_load(self):
        device = monsoon_device()
        assert device.is_asleep

    def test_wakelock_keeps_awake(self):
        device = monsoon_device()
        device.acquire_wakelock()
        assert not device.is_asleep

    def test_load_keeps_awake(self):
        device = monsoon_device()
        device.start_load()
        assert not device.is_asleep


class TestStep:
    def test_asleep_power_is_tiny(self):
        device = monsoon_device()
        report = device.step(26.0, 0.1)
        assert report.asleep
        assert report.supply_power_w < 0.1
        assert report.ops == 0.0

    def test_loaded_power_is_watts(self):
        device = monsoon_device()
        device.acquire_wakelock()
        device.start_load()
        report = device.step(26.0, 0.1)
        assert not report.asleep
        assert report.supply_power_w > 1.0
        assert report.ops > 0.0

    def test_loaded_device_heats_up(self):
        device = monsoon_device()
        device.acquire_wakelock()
        device.start_load()
        start = device.thermal.temperature("cpu")
        for _ in range(100):
            device.step(26.0, 0.1)
        assert device.thermal.temperature("cpu") > start + 5.0

    def test_ambient_is_forced_each_step(self):
        device = monsoon_device()
        device.step(31.5, 0.1)
        assert device.thermal.temperature("ambient") == 31.5

    def test_time_advances(self):
        device = monsoon_device()
        device.step(26.0, 0.1)
        device.step(26.0, 0.1)
        assert device.now_s == pytest.approx(0.2)

    def test_bad_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            monsoon_device().step(26.0, 0.0)

    def test_report_carries_frequency_and_cores(self):
        device = monsoon_device()
        device.acquire_wakelock()
        device.start_load()
        report = device.step(26.0, 0.1)
        assert report.frequencies_mhz["krait400"] == 2265.0
        assert report.online_cores == 4


class TestFrequencyControl:
    def test_fixed_frequency_pins_clusters(self):
        device = monsoon_device()
        device.acquire_wakelock()
        device.start_load()
        device.set_fixed_frequency(960.0)
        report = device.step(26.0, 0.1)
        assert report.frequencies_mhz["krait400"] == 960.0

    def test_fixed_frequency_rounds_down_per_cluster(self):
        device = build_device(PAPER_FLEETS["Nexus 6P"][0])
        device.connect_supply(MonsoonPowerMonitor(3.82))
        device.acquire_wakelock()
        device.start_load()
        device.set_fixed_frequency(960.0)
        report = device.step(26.0, 0.1)
        assert report.frequencies_mhz["a57"] == 960.0
        assert report.frequencies_mhz["a53"] == 960.0

    def test_unconstrain_restores_performance(self):
        device = monsoon_device()
        device.acquire_wakelock()
        device.start_load()
        device.set_fixed_frequency(960.0)
        device.step(26.0, 0.1)
        device.unconstrain_frequency()
        report = device.step(26.0, 0.1)
        assert report.frequencies_mhz["krait400"] == 2265.0

    def test_idle_device_parks_at_min_frequency(self):
        device = monsoon_device()
        device.acquire_wakelock()
        report = device.step(26.0, 0.1)
        assert report.frequencies_mhz["krait400"] == 300.0

    def test_invalid_fixed_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            monsoon_device().set_fixed_frequency(-100.0)

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            monsoon_device().start_load(utilization=0.0)


class TestG5VoltageThrottle:
    def test_nominal_voltage_caps_frequency(self):
        device = build_device(PAPER_FLEETS["LG G5"][0])
        device.connect_supply(MonsoonPowerMonitor(3.85))
        device.acquire_wakelock()
        device.start_load()
        report = device.step(26.0, 0.1)
        ceiling = lg_g5().voltage_throttle.ceiling_mhz
        assert report.frequencies_mhz["kryo-perf"] <= ceiling

    def test_max_voltage_unthrottled(self):
        device = build_device(PAPER_FLEETS["LG G5"][0])
        device.connect_supply(MonsoonPowerMonitor(4.4))
        device.acquire_wakelock()
        device.start_load()
        report = device.step(26.0, 0.1)
        assert report.frequencies_mhz["kryo-perf"] == 2150.0


class TestSensor:
    def test_read_cpu_temp_close_to_truth(self):
        device = monsoon_device()
        truth = device.thermal.temperature("cpu")
        assert device.read_cpu_temp() == pytest.approx(truth, abs=0.5)


class TestReboot:
    def test_reboot_resets_mitigation_and_clock(self):
        device = monsoon_device()
        device.acquire_wakelock()
        device.start_load()
        for _ in range(600):
            device.step(26.0, 0.5)
        device.reboot(soak_temp_c=26.0)
        assert device.now_s == 0.0
        assert device.thermal.temperature("cpu") == 26.0
        assert device.soc.mitigation.ceiling_steps == 0
        assert device.is_asleep
