"""OS behaviour model."""

import numpy as np
import pytest

from repro.device.os_model import InputVoltageThrottle, OsBehavior
from repro.errors import ConfigurationError


class TestInputVoltageThrottle:
    def test_caps_below_threshold(self):
        policy = InputVoltageThrottle(threshold_v=4.0, ceiling_mhz=1478.0)
        assert policy.ceiling_for(3.85) == 1478.0

    def test_uncapped_above_threshold(self):
        policy = InputVoltageThrottle(threshold_v=4.0, ceiling_mhz=1478.0)
        assert policy.ceiling_for(4.4) is None

    def test_threshold_is_inclusive(self):
        policy = InputVoltageThrottle(threshold_v=4.0, ceiling_mhz=1478.0)
        assert policy.ceiling_for(4.0) == 1478.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InputVoltageThrottle(threshold_v=0.0, ceiling_mhz=1000.0)
        with pytest.raises(ConfigurationError):
            InputVoltageThrottle(threshold_v=4.0, ceiling_mhz=0.0)


class TestWakelock:
    def test_acquire_release(self):
        os = OsBehavior(background_sigma_w=0.0, steal_sigma=0.0, steal_mean=0.0)
        assert not os.wakelock_held
        os.acquire_wakelock()
        assert os.wakelock_held
        os.release_wakelock()
        assert not os.wakelock_held


class TestBackgroundNoise:
    def test_deterministic_without_rng(self):
        os = OsBehavior(
            background_power_w=0.02, background_sigma_w=0.0,
            steal_sigma=0.0, steal_mean=0.0,
        )
        assert os.background_noise_w() == 0.02

    def test_noise_non_negative(self):
        os = OsBehavior(
            background_power_w=0.005, background_sigma_w=0.05,
            rng=np.random.default_rng(1),
        )
        assert all(os.background_noise_w() >= 0.0 for _ in range(200))

    def test_noise_requires_rng(self):
        with pytest.raises(ConfigurationError):
            OsBehavior(background_sigma_w=0.1, steal_sigma=0.0, steal_mean=0.0)


class TestStealFraction:
    def test_zero_without_rng(self):
        os = OsBehavior(background_sigma_w=0.0, steal_sigma=0.0, steal_mean=0.0)
        assert os.steal_frac(0.0) == 0.0

    def test_piecewise_constant(self):
        os = OsBehavior(rng=np.random.default_rng(2), steal_interval_s=60.0)
        first = os.steal_frac(0.0)
        assert os.steal_frac(30.0) == first
        assert os.steal_frac(59.9) == first

    def test_resamples_after_interval(self):
        os = OsBehavior(rng=np.random.default_rng(2), steal_interval_s=60.0)
        values = {os.steal_frac(t * 60.0) for t in range(30)}
        assert len(values) > 1

    def test_clamped_to_bounds(self):
        os = OsBehavior(
            rng=np.random.default_rng(3),
            steal_mean=0.05, steal_sigma=0.2, steal_max=0.08,
            steal_interval_s=1.0,
        )
        for t in range(300):
            frac = os.steal_frac(float(t))
            assert 0.0 <= frac <= 0.08

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OsBehavior(steal_max=1.0, rng=np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            OsBehavior(steal_interval_s=0.0, rng=np.random.default_rng(0))


class TestCpuCeiling:
    def test_no_policy_no_ceiling(self):
        os = OsBehavior(background_sigma_w=0.0, steal_sigma=0.0, steal_mean=0.0)
        assert os.cpu_ceiling_mhz(3.0) is None

    def test_policy_applies(self):
        os = OsBehavior(
            background_sigma_w=0.0, steal_sigma=0.0, steal_mean=0.0,
            voltage_throttle=InputVoltageThrottle(threshold_v=4.0, ceiling_mhz=1478.0),
        )
        assert os.cpu_ceiling_mhz(3.85) == 1478.0
        assert os.cpu_ceiling_mhz(4.4) is None
