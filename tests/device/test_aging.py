"""Battery aging."""

import pytest
from hypothesis import given, strategies as st

from repro.device.aging import BatteryAge, aged_battery, throttle_onset_soc
from repro.device.battery import Battery, BatterySpec
from repro.errors import ConfigurationError


@pytest.fixture
def g5_spec() -> BatterySpec:
    return BatterySpec(capacity_mah=2800.0, nominal_v=3.85, max_v=4.4)


class TestBatteryAge:
    def test_new_pack_is_pristine(self):
        age = BatteryAge.new()
        assert age.capacity_fraction() == 1.0
        assert age.resistance_multiplier() == 1.0
        assert age.ocv_depression_v() == 0.0

    def test_wear_accumulates(self):
        age = BatteryAge(cycles=500.0)
        assert age.capacity_fraction() < 0.9
        assert age.resistance_multiplier() > 1.5

    def test_negative_cycles_rejected(self):
        with pytest.raises(ConfigurationError):
            BatteryAge(cycles=-1.0)

    def test_dead_pack_rejected(self):
        with pytest.raises(ConfigurationError):
            BatteryAge(cycles=2500.0)

    @given(st.floats(min_value=0.0, max_value=1000.0))
    def test_capacity_monotone_in_cycles(self, cycles):
        younger = BatteryAge(cycles=cycles)
        older = BatteryAge(cycles=cycles + 100.0)
        assert older.capacity_fraction() <= younger.capacity_fraction()
        assert older.resistance_multiplier() >= younger.resistance_multiplier()


class TestAppliedTo:
    def test_capacity_shrinks(self, g5_spec):
        worn = BatteryAge(cycles=400.0).applied_to(g5_spec)
        assert worn.capacity_mah < g5_spec.capacity_mah

    def test_resistance_grows(self, g5_spec):
        worn = BatteryAge(cycles=400.0).applied_to(g5_spec)
        assert worn.internal_resistance_ohm > g5_spec.internal_resistance_ohm

    def test_ocv_curve_depressed(self, g5_spec):
        worn = BatteryAge(cycles=400.0).applied_to(g5_spec)
        assert worn.ocv_v(1.0) < g5_spec.ocv_v(1.0)

    def test_fresh_age_is_identity(self, g5_spec):
        assert BatteryAge.new().applied_to(g5_spec) == g5_spec


class TestAgedBattery:
    def test_old_pack_sags_more(self, g5_spec):
        new = Battery(g5_spec, state_of_charge=0.8)
        old = aged_battery(g5_spec, BatteryAge(cycles=500.0), state_of_charge=0.8)
        new.draw(5.0, 1.0)
        old.draw(5.0, 1.0)
        assert old.output_voltage_v < new.output_voltage_v


class TestThrottleOnset:
    def test_new_pack_throttles_late(self, g5_spec):
        onset_new = throttle_onset_soc(
            g5_spec, BatteryAge.new(), threshold_v=4.0, load_w=4.0
        )
        assert 0.0 < onset_new < 1.0

    def test_aging_moves_onset_earlier(self, g5_spec):
        onset_new = throttle_onset_soc(
            g5_spec, BatteryAge.new(), threshold_v=4.0, load_w=4.0
        )
        onset_old = throttle_onset_soc(
            g5_spec, BatteryAge(cycles=600.0), threshold_v=4.0, load_w=4.0
        )
        # A worn pack crosses the threshold at a HIGHER state of charge:
        # the phone starts feeling slow earlier in the day.
        assert onset_old > onset_new

    def test_low_threshold_never_throttles(self, g5_spec):
        onset = throttle_onset_soc(
            g5_spec, BatteryAge.new(), threshold_v=2.0, load_w=1.0
        )
        assert onset == 0.0

    def test_absurd_threshold_always_throttles(self, g5_spec):
        onset = throttle_onset_soc(
            g5_spec, BatteryAge.new(), threshold_v=5.0, load_w=1.0
        )
        assert onset == 1.0

    def test_heavier_load_earlier_onset(self, g5_spec):
        light = throttle_onset_soc(
            g5_spec, BatteryAge(cycles=300.0), threshold_v=4.0, load_w=1.0
        )
        heavy = throttle_onset_soc(
            g5_spec, BatteryAge(cycles=300.0), threshold_v=4.0, load_w=8.0
        )
        assert heavy >= light

    def test_bad_resolution_rejected(self, g5_spec):
        with pytest.raises(ConfigurationError):
            throttle_onset_soc(
                g5_spec, BatteryAge.new(), threshold_v=4.0, load_w=1.0,
                resolution=0.5,
            )
