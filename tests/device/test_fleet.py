"""Device fleets."""

import pytest

from repro.device.fleet import (
    PAPER_FLEETS,
    FleetUnit,
    build_device,
    paper_fleet,
    synthetic_fleet,
    unit_profile,
)
from repro.errors import ConfigurationError, UnknownModelError


class TestPaperFleets:
    def test_fleet_sizes_match_table2(self):
        sizes = {model: len(units) for model, units in PAPER_FLEETS.items()}
        assert sizes == {
            "Nexus 5": 4,
            "Nexus 6": 3,
            "Nexus 6P": 3,
            "LG G5": 5,
            "Google Pixel": 3,
        }

    def test_nexus5_covers_bins_0_to_3(self):
        bins = [u.bin_index for u in PAPER_FLEETS["Nexus 5"]]
        assert bins == [0, 1, 2, 3]

    def test_paper_named_serials_present(self):
        serials = {u.serial for units in PAPER_FLEETS.values() for u in units}
        # Devices the paper names explicitly (Sections IV-A2, IV-B).
        assert {"device-363", "device-793", "device-488", "device-653"} <= serials

    def test_paper_fleet_builds_devices(self):
        fleet = paper_fleet("Nexus 5")
        assert [d.serial for d in fleet] == ["bin-0", "bin-1", "bin-2", "bin-3"]

    def test_unknown_model_rejected(self):
        with pytest.raises(UnknownModelError):
            paper_fleet("OnePlus 3")

    def test_nexus6_units_nearly_identical(self):
        profiles = [unit_profile(u) for u in PAPER_FLEETS["Nexus 6"]]
        leaks = [p.leak_factor for p in profiles]
        assert max(leaks) / min(leaks) < 1.25

    def test_nexus5_bins_have_distinct_silicon(self):
        profiles = [unit_profile(u) for u in PAPER_FLEETS["Nexus 5"]]
        leaks = [p.leak_factor for p in profiles]
        assert leaks == sorted(leaks)  # bin-0 leaks least
        assert leaks[-1] / leaks[0] > 1.5

    def test_6p_worst_unit_is_leakiest(self):
        by_serial = {u.serial: unit_profile(u) for u in PAPER_FLEETS["Nexus 6P"]}
        assert (
            by_serial["device-363"].leak_factor
            > by_serial["device-571"].leak_factor
            > by_serial["device-793"].leak_factor
        )


class TestFleetUnit:
    def test_requires_exactly_one_placement(self):
        with pytest.raises(ConfigurationError):
            FleetUnit(model="Nexus 5", serial="x")
        with pytest.raises(ConfigurationError):
            FleetUnit(model="Nexus 5", serial="x", bin_index=0, percentile=50.0)

    def test_bin_placement(self):
        unit = FleetUnit(model="Nexus 5", serial="x", bin_index=2)
        assert unit_profile(unit).leak_factor > 0


class TestBuildDevice:
    def test_device_identity(self):
        device = build_device(PAPER_FLEETS["Nexus 5"][1])
        assert device.serial == "bin-1"
        assert device.spec.name == "Nexus 5"
        assert device.soc.bin_index == 1

    def test_same_seed_same_silicon(self):
        unit = PAPER_FLEETS["Google Pixel"][0]
        a = build_device(unit, root_seed=11)
        b = build_device(unit, root_seed=11)
        assert a.profile == b.profile

    def test_initial_temperature_applied(self):
        device = build_device(PAPER_FLEETS["Nexus 5"][0], initial_temp_c=31.0)
        assert device.thermal.temperature("case") == 31.0


class TestSyntheticFleet:
    def test_count(self):
        assert len(synthetic_fleet("Google Pixel", 6)) == 6

    def test_distinct_silicon(self):
        fleet = synthetic_fleet("Google Pixel", 8)
        leaks = {d.profile.leak_factor for d in fleet}
        assert len(leaks) == 8

    def test_deterministic(self):
        a = synthetic_fleet("Nexus 5", 4, root_seed=5)
        b = synthetic_fleet("Nexus 5", 4, root_seed=5)
        assert [d.profile for d in a] == [d.profile for d in b]

    def test_binned_model_gets_bin_assignments(self):
        fleet = synthetic_fleet("Nexus 5", 20)
        bins = {d.soc.bin_index for d in fleet}
        assert len(bins) > 1  # a 20-unit lot spans several bins
        assert all(0 <= b <= 6 for b in bins)

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            synthetic_fleet("Nexus 5", 0)
