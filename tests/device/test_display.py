"""Display model and its integration."""

import pytest

from repro.device.display import Display, DisplaySpec
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.errors import ConfigurationError
from repro.instruments.monsoon import MonsoonPowerMonitor


class TestDisplaySpec:
    def test_affine_in_brightness(self):
        spec = DisplaySpec(base_power_w=0.4, full_brightness_power_w=1.4)
        assert spec.power_w(0.0) == 0.4
        assert spec.power_w(1.0) == 1.4
        assert spec.power_w(0.5) == pytest.approx(0.9)

    def test_out_of_range_brightness_rejected(self):
        with pytest.raises(ConfigurationError):
            DisplaySpec().power_w(1.5)

    def test_inverted_powers_rejected(self):
        with pytest.raises(ConfigurationError):
            DisplaySpec(base_power_w=2.0, full_brightness_power_w=1.0)


class TestDisplay:
    def test_off_by_default(self):
        display = Display()
        assert not display.is_on
        assert display.power_w() == 0.0

    def test_turn_on(self):
        display = Display()
        display.turn_on(brightness=0.8)
        assert display.is_on
        assert display.power_w() > 0.0

    def test_turn_off(self):
        display = Display()
        display.turn_on()
        display.turn_off()
        assert display.power_w() == 0.0

    def test_bad_brightness_rejected(self):
        with pytest.raises(ConfigurationError):
            Display().turn_on(brightness=-0.1)


class TestDeviceIntegration:
    def _device(self):
        device = build_device(PAPER_FLEETS["Nexus 5"][0])
        device.connect_supply(MonsoonPowerMonitor(3.8))
        return device

    def test_screen_off_per_methodology(self):
        assert not self._device().display.is_on

    def test_screen_on_adds_power(self):
        lit = self._device()
        dark = self._device()
        lit.display.turn_on(brightness=1.0)
        for device in (lit, dark):
            device.acquire_wakelock()
            device.start_load()
        power_lit = lit.step(26.0, 0.1).supply_power_w
        power_dark = dark.step(26.0, 0.1).supply_power_w
        assert power_lit > power_dark + 1.0

    def test_screen_heats_the_case(self):
        lit = self._device()
        dark = self._device()
        lit.display.turn_on(brightness=1.0)
        for device in (lit, dark):
            device.acquire_wakelock()
            for _ in range(1200):
                device.step(26.0, 0.5)
        assert (
            lit.thermal.temperature("case")
            > dark.thermal.temperature("case") + 1.0
        )

    def test_asleep_display_draws_nothing(self):
        device = self._device()
        device.display.turn_on(brightness=1.0)
        report = device.step(26.0, 0.1)  # no wakelock, no load -> asleep
        assert report.asleep
        assert report.supply_power_w < 0.1
