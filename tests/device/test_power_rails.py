"""Supply interface and rail accounting."""

import pytest

from repro.device.battery import Battery, BatterySpec
from repro.device.power_rails import PowerSupply, RailBudget
from repro.errors import ConfigurationError
from repro.instruments.monsoon import MonsoonPowerMonitor


class TestRailBudget:
    def test_supply_power_accounts_for_regulator(self):
        rails = RailBudget(awake_idle_w=0.3, asleep_w=0.02, regulator_efficiency=0.9)
        assert rails.supply_power_w(0.9) == pytest.approx(1.0)

    def test_perfect_regulator(self):
        rails = RailBudget(awake_idle_w=0.3, asleep_w=0.02, regulator_efficiency=1.0)
        assert rails.supply_power_w(1.0) == 1.0

    def test_negative_power_rejected(self):
        rails = RailBudget(awake_idle_w=0.3, asleep_w=0.02)
        with pytest.raises(ConfigurationError):
            rails.supply_power_w(-1.0)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ConfigurationError):
            RailBudget(awake_idle_w=0.3, asleep_w=0.02, regulator_efficiency=0.0)

    def test_negative_rail_rejected(self):
        with pytest.raises(ConfigurationError):
            RailBudget(awake_idle_w=-0.1, asleep_w=0.02)


class TestProtocol:
    def test_battery_satisfies_protocol(self):
        battery = Battery(BatterySpec(capacity_mah=1000.0, nominal_v=3.8, max_v=4.3))
        assert isinstance(battery, PowerSupply)

    def test_monsoon_satisfies_protocol(self):
        assert isinstance(MonsoonPowerMonitor(3.8), PowerSupply)
