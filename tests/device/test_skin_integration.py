"""Skin throttling integrated into a running device."""

import dataclasses

import pytest

from repro.device.catalog import device_spec
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.thermal.skin import SkinThrottleSpec


def skinned_device(throttle_surface_c=38.0, clear_surface_c=36.0):
    base = device_spec("Nexus 5")
    spec = dataclasses.replace(
        base,
        skin_throttle=SkinThrottleSpec(
            contact_resistance=0.0,
            throttle_surface_c=throttle_surface_c,
            clear_surface_c=clear_surface_c,
            poll_interval_s=10.0,
        ),
    )
    from repro.device.fleet import unit_profile

    unit = PAPER_FLEETS["Nexus 5"][0]
    device = build_device(unit, spec=spec)
    device.connect_supply(MonsoonPowerMonitor(3.8))
    return device


class TestSkinThrottleIntegration:
    def test_policy_built_per_device(self):
        a = skinned_device()
        b = skinned_device()
        assert a.skin_throttle is not None
        assert a.skin_throttle is not b.skin_throttle

    def test_stock_devices_have_no_skin_policy(self):
        device = build_device(PAPER_FLEETS["Nexus 5"][0])
        assert device.skin_throttle is None

    def test_hot_case_caps_frequency(self):
        device = skinned_device()
        device.thermal.settle_to(45.0)  # case well above the surface trip
        device.acquire_wakelock()
        device.start_load()
        report = None
        for _ in range(300):
            report = device.step(26.0, 0.2)
        assert report.frequencies_mhz["krait400"] < 2265.0
        assert device.soc.external_ceiling_steps > 0

    def test_cool_case_runs_free(self):
        device = skinned_device()
        device.acquire_wakelock()
        device.start_load()
        report = device.step(26.0, 0.2)
        assert report.frequencies_mhz["krait400"] == 2265.0
        assert device.soc.external_ceiling_steps == 0

    def test_skin_cap_limits_sustained_surface_temperature(self):
        # The whole point of a skin policy: the case stops climbing once
        # the cap bites, even under sustained full load.
        capped = skinned_device(throttle_surface_c=38.0)
        free = build_device(PAPER_FLEETS["Nexus 5"][0])
        free.connect_supply(MonsoonPowerMonitor(3.8))
        for device in (capped, free):
            device.acquire_wakelock()
            device.start_load()
            for _ in range(6000):  # 20 minutes
                device.step(26.0, 0.2)
        assert (
            capped.thermal.temperature("case")
            < free.thermal.temperature("case") - 1.0
        )
