"""Battery charging."""

import pytest

from repro.device.aging import BatteryAge, aged_battery
from repro.device.battery import Battery, BatterySpec
from repro.device.charging import ChargerSpec, charge, time_to_charge_s
from repro.errors import ConfigurationError, SimulationError


@pytest.fixture
def spec() -> BatterySpec:
    return BatterySpec(capacity_mah=2800.0, nominal_v=3.85, max_v=4.4)


@pytest.fixture
def charger() -> ChargerSpec:
    return ChargerSpec(max_current_a=2.0, cv_voltage_v=4.35)


class TestChargerSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChargerSpec(max_current_a=0.0)
        with pytest.raises(ConfigurationError):
            ChargerSpec(taper_cutoff_a=5.0)
        with pytest.raises(ConfigurationError):
            ChargerSpec(efficiency=0.0)


class TestChargeCurve:
    def test_charges_to_near_full(self, spec, charger):
        battery = Battery(spec, state_of_charge=0.2)
        charge(battery, charger)
        assert battery.state_of_charge > 0.9

    def test_cc_then_cv(self, spec, charger):
        battery = Battery(spec, state_of_charge=0.2)
        curve = charge(battery, charger)
        phases = [sample.phase for sample in curve]
        assert phases[0] == "cc"
        assert "cv" in phases
        # Once in CV, never back to CC.
        first_cv = phases.index("cv")
        assert all(p in ("cv", "done") for p in phases[first_cv:])

    def test_current_tapers_in_cv(self, spec, charger):
        battery = Battery(spec, state_of_charge=0.2)
        curve = charge(battery, charger)
        cv_currents = [s.current_a for s in curve if s.phase == "cv"]
        assert len(cv_currents) >= 2
        assert cv_currents == sorted(cv_currents, reverse=True)

    def test_soc_monotone(self, spec, charger):
        battery = Battery(spec, state_of_charge=0.3)
        curve = charge(battery, charger)
        socs = [s.state_of_charge for s in curve]
        assert socs == sorted(socs)

    def test_nearly_full_battery_charges_fast(self, spec, charger):
        nearly = Battery(spec, state_of_charge=0.95)
        empty = Battery(spec, state_of_charge=0.10)
        fast = time_to_charge_s(nearly, charger)
        slow = time_to_charge_s(empty, charger)
        assert fast < slow / 3

    def test_bad_dt_rejected(self, spec, charger):
        with pytest.raises(SimulationError):
            charge(Battery(spec, state_of_charge=0.5), charger, dt=0.0)


class TestAgingInteraction:
    def test_worn_pack_charges_slower(self, spec, charger):
        new = Battery(spec, state_of_charge=0.2)
        old = aged_battery(spec, BatteryAge(cycles=600.0), state_of_charge=0.2)
        # Absolute capacity differs; compare time to reach the same SoC.
        time_new = time_to_charge_s(new, charger, target_soc=0.9)
        time_old = time_to_charge_s(old, charger, target_soc=0.9)
        # The worn pack's higher resistance forces an earlier CV handoff;
        # per unit of (smaller) capacity it still spends longer per SoC
        # point in the tail region.
        curve_fraction_old = time_old / (0.7 * old.spec.energy_capacity_j)
        curve_fraction_new = time_new / (0.7 * new.spec.energy_capacity_j)
        assert curve_fraction_old > curve_fraction_new

    def test_worn_pack_enters_cv_earlier(self, spec, charger):
        new = Battery(spec, state_of_charge=0.2)
        old = aged_battery(spec, BatteryAge(cycles=600.0), state_of_charge=0.2)
        curve_new = charge(new, charger)
        curve_old = charge(old, charger)

        def cv_onset_soc(curve):
            for sample in curve:
                if sample.phase == "cv":
                    return sample.state_of_charge
            return 1.0

        assert cv_onset_soc(curve_old) < cv_onset_soc(curve_new)


class TestTimeToCharge:
    def test_zero_when_already_there(self, spec, charger):
        battery = Battery(spec, state_of_charge=0.9)
        assert time_to_charge_s(battery, charger, target_soc=0.8) == 0.0

    def test_bad_target_rejected(self, spec, charger):
        with pytest.raises(ConfigurationError):
            time_to_charge_s(Battery(spec), charger, target_soc=0.0)
