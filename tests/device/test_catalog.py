"""Device catalog."""

import pytest

from repro.device.catalog import (
    DEVICE_NAMES,
    ThermalSpec,
    ThrottleSpec,
    device_spec,
    google_pixel,
    lg_g5,
    nexus5,
    nexus6,
    nexus6p,
)
from repro.errors import UnknownModelError
from repro.soc.catalog import soc_by_name


class TestCatalogShape:
    def test_all_five_handsets(self):
        assert DEVICE_NAMES == (
            "Nexus 5", "Nexus 6", "Nexus 6P", "LG G5", "Google Pixel"
        )

    def test_lookup(self):
        assert device_spec("Nexus 5").name == "Nexus 5"

    def test_unknown_rejected(self):
        with pytest.raises(UnknownModelError):
            device_spec("iPhone X")

    @pytest.mark.parametrize("name", DEVICE_NAMES)
    def test_every_device_references_valid_soc(self, name):
        spec = device_spec(name)
        soc = soc_by_name(spec.soc_name)
        assert soc.name == spec.soc_name

    @pytest.mark.parametrize("name", DEVICE_NAMES)
    def test_fixed_frequency_is_on_every_cluster_reachable(self, name):
        # The FIXED-FREQUENCY setting must map onto each cluster's ladder
        # (nearest-below is fine, but it must be above the minimum).
        spec = device_spec(name)
        soc = soc_by_name(spec.soc_name)
        for cluster in soc.clusters:
            nearest = cluster.nearest_freq_mhz(spec.fixed_freq_mhz)
            assert nearest >= cluster.min_freq_mhz

    @pytest.mark.parametrize("name", DEVICE_NAMES)
    def test_throttle_band_sane(self, name):
        throttle = device_spec(name).throttle
        assert throttle.clear_temp_c < throttle.throttle_temp_c <= 85.0


class TestModelSpecifics:
    def test_nexus5_sheds_a_core_at_80(self):
        spec = nexus5()
        assert spec.throttle.critical_temp_c == 80.0
        assert spec.throttle.max_offline == 1

    def test_only_nexus5_has_core_shutdown(self):
        others = [nexus6(), nexus6p(), lg_g5(), google_pixel()]
        assert all(spec.throttle.critical_temp_c is None for spec in others)

    def test_only_g5_throttles_on_input_voltage(self):
        assert lg_g5().voltage_throttle is not None
        for spec in (nexus5(), nexus6(), nexus6p(), google_pixel()):
            assert spec.voltage_throttle is None

    def test_g5_battery_labels_match_paper(self):
        spec = lg_g5()
        assert spec.battery.nominal_v == 3.85
        assert spec.battery.max_v == 4.4
        assert spec.voltage_throttle.threshold_v > spec.battery.nominal_v

    def test_sd810_most_total_power_capable(self):
        # The octa-core 6P is the era's hottest part; it gets the best
        # chassis heat path of the five.
        specs = [device_spec(n) for n in DEVICE_NAMES]
        r_totals = {
            s.name: s.thermal.r_case_ambient for s in specs
        }
        assert r_totals["Nexus 6P"] == min(r_totals.values())


class TestThermalSpec:
    def test_build_produces_five_node_network(self):
        net = nexus5().thermal.build(initial_temp_c=26.0)
        assert set(net.node_names) == {"cpu", "pkg", "battery", "case", "ambient"}
        assert net.temperature("cpu") == 26.0

    def test_dc_path_resistance_is_physical(self):
        # Steady-state die rise per watt should land in the ballpark real
        # passively-cooled phones exhibit (roughly 10-25 K/W).
        for name in DEVICE_NAMES:
            net = device_spec(name).thermal.build()
            rise = net.steady_state_rise("cpu", 1.0, "ambient")
            assert 8.0 <= rise <= 25.0, name


class TestThrottleSpec:
    def test_build_fresh_state_each_time(self):
        spec = ThrottleSpec(throttle_temp_c=76.0, clear_temp_c=73.0)
        a, b = spec.build(), spec.build()
        a.update(90.0, 0.0)
        assert b.update(20.0, 0.0).ceiling_steps == 0

    def test_core_shutdown_built_when_configured(self):
        spec = ThrottleSpec(
            throttle_temp_c=76.0, clear_temp_c=73.0,
            critical_temp_c=80.0, restore_temp_c=75.0,
        )
        assert spec.build().shutdown is not None
