"""Battery model."""

import pytest

from repro.device.battery import Battery, BatterySpec
from repro.errors import ConfigurationError, SimulationError


@pytest.fixture
def spec() -> BatterySpec:
    return BatterySpec(capacity_mah=2800.0, nominal_v=3.85, max_v=4.4)


class TestSpec:
    def test_energy_capacity(self, spec):
        # 2800 mAh x 3.85 V = 10780 mWh = 38808 J.
        assert spec.energy_capacity_j == pytest.approx(38808.0)

    def test_ocv_endpoints(self, spec):
        assert spec.ocv_v(0.0) == pytest.approx(3.30)
        assert spec.ocv_v(1.0) == pytest.approx(4.35)

    def test_ocv_interpolates(self, spec):
        mid = spec.ocv_v(0.35)
        assert spec.ocv_v(0.2) < mid < spec.ocv_v(0.5)

    def test_ocv_monotone(self, spec):
        values = [spec.ocv_v(s / 20) for s in range(21)]
        assert values == sorted(values)

    def test_out_of_range_soc_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            spec.ocv_v(1.1)

    def test_bad_curve_rejected(self):
        with pytest.raises(ConfigurationError):
            BatterySpec(
                capacity_mah=1000.0, nominal_v=3.8, max_v=4.3,
                ocv_curve=((0.5, 3.8), (1.0, 4.3)),
            )

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            BatterySpec(capacity_mah=0.0, nominal_v=3.8, max_v=4.3)


class TestBattery:
    def test_full_battery_voltage(self, spec):
        battery = Battery(spec)
        assert battery.output_voltage_v == pytest.approx(4.35)

    def test_sag_under_load(self, spec):
        battery = Battery(spec)
        no_load = battery.output_voltage_v
        battery.draw(5.0, 1.0)
        assert battery.output_voltage_v < no_load

    def test_discharge_reduces_soc(self, spec):
        battery = Battery(spec)
        battery.draw(10.0, 60.0)
        assert battery.state_of_charge < 1.0

    def test_energy_accounting(self, spec):
        battery = Battery(spec)
        battery.draw(10.0, 60.0)
        assert battery.energy_drawn_j == pytest.approx(600.0)

    def test_current_matches_power_over_voltage(self, spec):
        battery = Battery(spec)
        current = battery.draw(4.0, 1.0)
        assert current == pytest.approx(4.0 / battery.output_voltage_v, rel=0.05)

    def test_depleted_battery_refuses(self, spec):
        battery = Battery(spec, state_of_charge=0.001)
        with pytest.raises(SimulationError):
            for _ in range(10000):
                battery.draw(10.0, 10.0)

    def test_overload_rejected(self, spec):
        battery = Battery(spec)
        with pytest.raises(SimulationError):
            battery.draw(1e6, 0.1)

    def test_negative_power_rejected(self, spec):
        with pytest.raises(SimulationError):
            Battery(spec).draw(-1.0, 1.0)

    def test_bad_initial_soc_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            Battery(spec, state_of_charge=0.0)

    def test_voltage_drops_as_discharged(self, spec):
        battery = Battery(spec)
        v_full = battery.output_voltage_v
        # Burn ~40% of capacity.
        for _ in range(100):
            battery.draw(10.0, spec.energy_capacity_j * 0.004 / 10.0)
        battery.draw(0.0, 1.0)  # clear the load for an OCV-ish reading
        assert battery.output_voltage_v < v_full
