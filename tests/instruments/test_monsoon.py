"""Monsoon power monitor."""

import pytest

from repro.errors import InstrumentError
from repro.instruments.monsoon import (
    MAX_OUTPUT_V,
    MIN_OUTPUT_V,
    MonsoonPowerMonitor,
    SAMPLE_RATE_HZ,
)


class TestVoltage:
    def test_configured_voltage_presented(self):
        assert MonsoonPowerMonitor(3.8).output_voltage_v == 3.8

    def test_set_voltage(self):
        monsoon = MonsoonPowerMonitor(3.85)
        monsoon.set_voltage(4.4)
        assert monsoon.output_voltage_v == 4.4

    def test_out_of_range_rejected(self):
        with pytest.raises(InstrumentError):
            MonsoonPowerMonitor(MAX_OUTPUT_V + 0.1)
        with pytest.raises(InstrumentError):
            MonsoonPowerMonitor(MIN_OUTPUT_V - 0.1)


class TestDraw:
    def test_current_is_power_over_voltage(self):
        monsoon = MonsoonPowerMonitor(4.0)
        assert monsoon.draw(2.0, 1.0) == pytest.approx(0.5)

    def test_energy_integration(self):
        monsoon = MonsoonPowerMonitor(4.0)
        for _ in range(10):
            monsoon.draw(3.0, 0.5)
        assert monsoon.energy_j == pytest.approx(15.0)
        assert monsoon.elapsed_s == pytest.approx(5.0)

    def test_charge_integration(self):
        monsoon = MonsoonPowerMonitor(4.0)
        monsoon.draw(2.0, 10.0)
        assert monsoon.charge_c == pytest.approx(5.0)

    def test_mean_power(self):
        monsoon = MonsoonPowerMonitor(4.0)
        monsoon.draw(1.0, 1.0)
        monsoon.draw(3.0, 1.0)
        assert monsoon.mean_power_w == pytest.approx(2.0)

    def test_mean_current(self):
        monsoon = MonsoonPowerMonitor(4.0)
        monsoon.draw(2.0, 2.0)
        assert monsoon.mean_current_a == pytest.approx(0.5)

    def test_peak_current(self):
        monsoon = MonsoonPowerMonitor(4.0)
        monsoon.draw(1.0, 1.0)
        monsoon.draw(6.0, 0.1)
        monsoon.draw(2.0, 1.0)
        assert monsoon.peak_current_a == pytest.approx(1.5)

    def test_negative_power_rejected(self):
        with pytest.raises(InstrumentError):
            MonsoonPowerMonitor(4.0).draw(-1.0, 1.0)

    def test_zero_dt_rejected(self):
        with pytest.raises(InstrumentError):
            MonsoonPowerMonitor(4.0).draw(1.0, 0.0)


class TestCounters:
    def test_reset(self):
        monsoon = MonsoonPowerMonitor(4.0)
        monsoon.draw(2.0, 5.0)
        monsoon.reset_counters()
        assert monsoon.energy_j == 0.0
        assert monsoon.elapsed_s == 0.0
        assert monsoon.peak_current_a == 0.0

    def test_mean_power_needs_samples(self):
        with pytest.raises(InstrumentError):
            MonsoonPowerMonitor(4.0).mean_power_w

    def test_nominal_sample_count(self):
        monsoon = MonsoonPowerMonitor(4.0)
        monsoon.draw(1.0, 2.0)
        assert monsoon.nominal_sample_count == int(2.0 * SAMPLE_RATE_HZ)


class TestOutputEnable:
    def test_disabled_output_refuses(self):
        monsoon = MonsoonPowerMonitor(4.0)
        monsoon.disable_output()
        with pytest.raises(InstrumentError):
            monsoon.draw(1.0, 1.0)
        with pytest.raises(InstrumentError):
            monsoon.output_voltage_v

    def test_reenable(self):
        monsoon = MonsoonPowerMonitor(4.0)
        monsoon.disable_output()
        monsoon.enable_output()
        assert monsoon.draw(1.0, 1.0) > 0


class TestSampleRecording:
    def test_recording_disabled_by_default(self):
        monsoon = MonsoonPowerMonitor(4.0)
        monsoon.draw(1.0, 1.0)
        with pytest.raises(InstrumentError):
            monsoon.samples()

    def test_recording(self):
        monsoon = MonsoonPowerMonitor(4.0, record_samples=True)
        monsoon.draw(2.0, 1.0)
        monsoon.draw(4.0, 1.0)
        samples = monsoon.samples()
        assert len(samples) == 2
        assert samples[0] == (1.0, 0.5)
        assert samples[1] == (2.0, 1.0)
