"""Experiment logging."""

import pytest

from repro.core.results import IterationResult
from repro.errors import InstrumentError
from repro.instruments.logger import ExperimentLogger


def iteration(serial="bin-0", workload="UNCONSTRAINED", perf=900.0):
    return IterationResult(
        model="Nexus 5", serial=serial, workload=workload,
        iterations_completed=perf, energy_j=470.0, mean_power_w=1.57,
        mean_freq_mhz=2004.0, max_cpu_temp_c=78.2, cooldown_s=60.0,
        time_throttled_s=220.0,
    )


@pytest.fixture
def logger(tmp_path) -> ExperimentLogger:
    return ExperimentLogger(tmp_path / "run" / "experiment.jsonl")


class TestWriting:
    def test_creates_parent_directories(self, logger):
        logger.log_note("hello")
        assert logger.path.exists()

    def test_iteration_round_trip(self, logger):
        logger.log_iteration(iteration())
        loaded = logger.iterations()
        assert loaded == [iteration()]

    def test_append_only(self, logger):
        logger.log_iteration(iteration(perf=900.0))
        logger.log_iteration(iteration(perf=910.0))
        assert [r.iterations_completed for r in logger.iterations()] == [
            900.0, 910.0,
        ]

    def test_events_with_detail(self, logger):
        logger.log_event("thermabox-stable", target_c=26.0, settle_s=183.0)
        events = logger.events("thermabox-stable")
        assert len(events) == 1
        assert events[0]["detail"]["target_c"] == 26.0

    def test_empty_event_name_rejected(self, logger):
        with pytest.raises(InstrumentError):
            logger.log_event("")


class TestReading:
    def test_missing_file_yields_nothing(self, logger):
        assert list(logger.records()) == []
        assert logger.iterations() == []

    def test_filter_by_serial(self, logger):
        logger.log_iteration(iteration(serial="bin-0"))
        logger.log_iteration(iteration(serial="bin-3"))
        assert [r.serial for r in logger.iterations(serial="bin-3")] == ["bin-3"]

    def test_filter_by_workload(self, logger):
        logger.log_iteration(iteration(workload="UNCONSTRAINED"))
        logger.log_iteration(iteration(workload="FIXED-FREQUENCY"))
        loaded = logger.iterations(workload="FIXED-FREQUENCY")
        assert len(loaded) == 1

    def test_summary(self, logger):
        logger.log_iteration(iteration())
        logger.log_event("phase", name="warmup")
        logger.log_note("chamber door resealed")
        assert logger.summary() == {"iteration": 1, "event": 1, "note": 1}

    def test_corrupt_line_raises_with_location(self, logger):
        logger.log_note("fine")
        with logger.path.open("a") as fp:
            fp.write("{not json\n")
        with pytest.raises(InstrumentError, match=":2"):
            list(logger.records())

    def test_foreign_format_rejected(self, logger):
        with logger.path.open("a") as fp:
            fp.write('{"format": "other-tool", "kind": "note"}\n')
        with pytest.raises(InstrumentError):
            list(logger.records())

    def test_mixed_stream_preserved_in_order(self, logger):
        logger.log_event("phase", name="warmup")
        logger.log_iteration(iteration())
        logger.log_event("phase", name="cooldown")
        kinds = [record["kind"] for record in logger.records()]
        assert kinds == ["event", "iteration", "event"]


class TestContextManager:
    def test_round_trip_with_held_handle(self, logger):
        with logger as active:
            assert active is logger
            active.log_iteration(iteration(perf=900.0))
            active.log_event("phase", name="cooldown")
            active.log_iteration(iteration(perf=910.0))
        assert [r.iterations_completed for r in logger.iterations()] == [
            900.0, 910.0,
        ]
        assert logger.summary() == {"iteration": 2, "event": 1}

    def test_records_readable_while_open(self, logger):
        # records() flushes the held handle, so a reader inside the
        # `with` block sees everything logged so far.
        with logger:
            logger.log_note("first")
            assert [r["kind"] for r in logger.records()] == ["note"]
            logger.log_note("second")
            assert len(list(logger.records())) == 2

    def test_exit_closes_handle(self, logger):
        with logger:
            logger.log_note("inside")
        assert logger._handle is None
        # Bare appends still work after the managed scope ends.
        logger.log_note("outside")
        assert len(list(logger.records())) == 2

    def test_reentry_appends(self, logger):
        with logger:
            logger.log_note("run 1")
        with logger:
            logger.log_note("run 2")
        assert len(list(logger.records())) == 2
