"""Thermistor probe."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.instruments.probe import ThermistorProbe


class TestLag:
    def test_element_tracks_with_first_order_lag(self):
        probe = ThermistorProbe(
            time_constant_s=4.0, noise_sigma_c=0.0, quantization_c=0.0,
            initial_temp_c=20.0,
        )
        probe.advance(30.0, 4.0)  # one time constant
        expected = 20.0 + (30.0 - 20.0) * (1 - np.exp(-1.0))
        assert probe.element_temp_c == pytest.approx(expected)

    def test_converges_eventually(self):
        probe = ThermistorProbe(noise_sigma_c=0.0, initial_temp_c=20.0)
        for _ in range(100):
            probe.advance(26.0, 1.0)
        assert probe.element_temp_c == pytest.approx(26.0, abs=0.01)

    def test_lag_means_reading_trails_step(self):
        probe = ThermistorProbe(
            noise_sigma_c=0.0, quantization_c=0.0, initial_temp_c=20.0
        )
        probe.advance(30.0, 0.5)
        assert 20.0 < probe.read() < 30.0

    def test_bad_dt_rejected(self):
        probe = ThermistorProbe(noise_sigma_c=0.0)
        with pytest.raises(ConfigurationError):
            probe.advance(26.0, 0.0)


class TestRead:
    def test_quantization(self):
        probe = ThermistorProbe(
            noise_sigma_c=0.0, quantization_c=0.25, initial_temp_c=26.13
        )
        assert probe.read() == pytest.approx(26.25)

    def test_noise_requires_rng(self):
        with pytest.raises(ConfigurationError):
            ThermistorProbe(noise_sigma_c=0.1)

    def test_noisy_reads_vary(self):
        probe = ThermistorProbe(
            noise_sigma_c=0.1, quantization_c=0.0,
            rng=np.random.default_rng(4),
        )
        assert len({probe.read() for _ in range(20)}) > 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThermistorProbe(time_constant_s=0.0, noise_sigma_c=0.0)
        with pytest.raises(ConfigurationError):
            ThermistorProbe(noise_sigma_c=-0.1)
        with pytest.raises(ConfigurationError):
            ThermistorProbe(noise_sigma_c=0.0, quantization_c=-0.1)
