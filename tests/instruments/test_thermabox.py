"""THERMABOX thermal chamber."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, InstrumentError
from repro.instruments.thermabox import Thermabox, ThermaboxConfig


class TestConfig:
    def test_paper_defaults(self):
        config = ThermaboxConfig()
        assert config.target_c == 26.0
        assert config.tolerance_c == 0.5
        assert config.heater_w == 250.0

    def test_deadband_must_fit_in_tolerance(self):
        with pytest.raises(ConfigurationError):
            ThermaboxConfig(tolerance_c=0.5, deadband_c=0.5)

    def test_bad_plant_constants_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermaboxConfig(air_heat_capacity=0.0)
        with pytest.raises(ConfigurationError):
            ThermaboxConfig(heater_w=-5.0)


class TestRegulation:
    def test_holds_band_around_target(self):
        box = Thermabox(initial_temp_c=26.0)
        worst = 0.0
        for _ in range(1800):
            box.step(room_temp_c=22.0, dt=1.0)
            worst = max(worst, abs(box.air_temp_c - 26.0))
        assert worst <= 0.5

    def test_heats_up_from_cold_room(self):
        box = Thermabox(initial_temp_c=22.0)
        for _ in range(3600):
            box.step(room_temp_c=22.0, dt=1.0)
        assert box.is_within_band()
        assert box.heater_duty_seconds > 0.0

    def test_cools_down_from_hot_start(self):
        box = Thermabox(initial_temp_c=30.0)
        for _ in range(3600):
            box.step(room_temp_c=28.0, dt=1.0)
        assert box.is_within_band()
        assert box.cooler_duty_seconds > 0.0

    def test_absorbs_device_load(self):
        # A 4 W phone inside must not push the chamber out of band.
        box = Thermabox(initial_temp_c=26.0)
        for _ in range(1800):
            box.step(room_temp_c=22.0, dt=1.0, load_w=4.0)
        assert box.is_within_band()

    def test_heater_and_cooler_never_both_on(self):
        box = Thermabox(initial_temp_c=24.0)
        for _ in range(600):
            box.step(room_temp_c=22.0, dt=1.0)
            assert not (box.heater_on and box.cooler_on)

    def test_noisy_probe_still_regulates(self):
        box = Thermabox(initial_temp_c=26.0, rng=np.random.default_rng(9))
        for _ in range(1200):
            box.step(room_temp_c=23.0, dt=1.0)
        assert box.is_within_band()


class TestCompressorProtection:
    def test_minimum_off_time_respected(self):
        config = ThermaboxConfig(compressor_min_off_s=30.0)
        box = Thermabox(config, initial_temp_c=27.5)
        last_off_time = None
        time = 0.0
        previous_on = False
        restarts = []
        for _ in range(2400):
            box.step(room_temp_c=29.0, dt=1.0)
            time += 1.0
            if box.cooler_on and not previous_on and last_off_time is not None:
                restarts.append(time - last_off_time)
            if previous_on and not box.cooler_on:
                last_off_time = time
            previous_on = box.cooler_on
        assert all(gap >= 30.0 for gap in restarts)


class TestStability:
    def test_wait_until_stable_from_target(self):
        box = Thermabox(initial_temp_c=26.0)
        settle = box.wait_until_stable(room_temp_c=23.0)
        assert settle >= 60.0
        assert box.is_within_band()

    def test_wait_until_stable_timeout(self):
        # A chamber that can never reach its setpoint must raise, not hang:
        # freezing room, weak heater.
        config = ThermaboxConfig(heater_w=1.0, wall_resistance=0.01)
        box = Thermabox(config, initial_temp_c=-20.0)
        with pytest.raises(InstrumentError):
            box.wait_until_stable(room_temp_c=-20.0, timeout_s=120.0)

    def test_probe_reading_near_truth(self):
        box = Thermabox(initial_temp_c=26.0)
        box.step(room_temp_c=23.0, dt=1.0)
        assert box.probe_reading_c() == pytest.approx(box.air_temp_c, abs=0.3)

    def test_bad_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            Thermabox().step(room_temp_c=22.0, dt=0.0)
