"""CPU idle states and selection."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.cpuidle import (
    IdleState,
    MenuGovernor,
    best_state_by_energy,
    qcom_idle_ladder,
    sleep_residency_fraction,
)

LEAK_W = 0.15  # an idle-but-powered core's leakage


class TestIdleState:
    def test_break_even(self):
        state = IdleState(
            name="deep", leak_fraction=0.0,
            entry_exit_latency_us=100.0, entry_energy_uj=300.0,
        )
        # Saves LEAK_W while resident: 300 uJ / 0.15 W = 2000 us.
        assert state.break_even_us(LEAK_W) == pytest.approx(2000.0)

    def test_wfi_never_breaks_even_on_leakage(self):
        wfi = qcom_idle_ladder()[0]
        assert wfi.break_even_us(LEAK_W) == float("inf")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IdleState(name="", leak_fraction=0.5,
                      entry_exit_latency_us=1.0, entry_energy_uj=1.0)
        with pytest.raises(ConfigurationError):
            IdleState(name="x", leak_fraction=1.5,
                      entry_exit_latency_us=1.0, entry_energy_uj=1.0)


class TestLadder:
    def test_three_states(self):
        ladder = qcom_idle_ladder()
        assert [s.name for s in ladder] == ["wfi", "retention", "power-collapse"]

    def test_deeper_saves_more_but_costs_more(self):
        wfi, retention, collapse = qcom_idle_ladder()
        assert wfi.leak_fraction > retention.leak_fraction > collapse.leak_fraction
        assert (
            wfi.entry_exit_latency_us
            < retention.entry_exit_latency_us
            < collapse.entry_exit_latency_us
        )


class TestMenuGovernor:
    @pytest.fixture
    def governor(self) -> MenuGovernor:
        return MenuGovernor(ladder=qcom_idle_ladder())

    def test_short_idle_stays_shallow(self, governor):
        assert governor.select(50.0, LEAK_W).name == "wfi"

    def test_medium_idle_picks_retention(self, governor):
        # Long enough to amortize retention, too short for collapse.
        retention = qcom_idle_ladder()[1]
        idle = retention.break_even_us(LEAK_W) * 1.5
        assert governor.select(idle, LEAK_W).name == "retention"

    def test_long_idle_collapses(self, governor):
        # The cooldown's 5-second sleeps dwarf every break-even point.
        assert governor.select(5_000_000.0, LEAK_W).name == "power-collapse"

    def test_latency_budget_blocks_deep_states(self):
        governor = MenuGovernor(ladder=qcom_idle_ladder(), latency_budget_us=100.0)
        assert governor.select(5_000_000.0, LEAK_W).name == "retention"

    def test_unordered_ladder_rejected(self):
        wfi, retention, collapse = qcom_idle_ladder()
        with pytest.raises(ConfigurationError):
            MenuGovernor(ladder=(collapse, wfi, retention))

    def test_idle_energy_accounting(self, governor):
        collapse = qcom_idle_ladder()[2]
        energy = governor.idle_energy_uj(collapse, idle_us=1_000_000.0,
                                         idle_leak_w=LEAK_W)
        expected = 350.0 + 0.15 * 0.03 * 1_000_000.0
        assert energy == pytest.approx(expected)


class TestOracle:
    def test_oracle_matches_governor_on_long_idles(self):
        ladder = qcom_idle_ladder()
        oracle = best_state_by_energy(ladder, 5_000_000.0, LEAK_W)
        governor = MenuGovernor(ladder=ladder)
        assert oracle.name == governor.select(5_000_000.0, LEAK_W).name

    def test_oracle_prefers_shallow_for_short_idle(self):
        oracle = best_state_by_energy(qcom_idle_ladder(), 100.0, LEAK_W)
        assert oracle.name == "wfi"

    def test_governor_never_beats_oracle(self):
        ladder = qcom_idle_ladder()
        governor = MenuGovernor(ladder=ladder)
        for idle_us in (10.0, 500.0, 5_000.0, 50_000.0, 5_000_000.0):
            chosen = governor.select(idle_us, LEAK_W)
            oracle = best_state_by_energy(ladder, idle_us, LEAK_W)
            chosen_energy = governor.idle_energy_uj(chosen, idle_us, LEAK_W)
            oracle_energy = governor.idle_energy_uj(oracle, idle_us, LEAK_W)
            assert chosen_energy >= oracle_energy - 1e-9


class TestCooldownResidency:
    def test_paper_poll_cycle(self):
        # 5 s polls with ~50 ms awake to read the sensor: 99% asleep.
        fraction = sleep_residency_fraction(5.0, 0.05)
        assert fraction == pytest.approx(0.99)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sleep_residency_fraction(0.0, 0.0)
        with pytest.raises(ConfigurationError):
            sleep_residency_fraction(5.0, 5.0)
