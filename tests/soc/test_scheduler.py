"""Thread placement."""

import pytest

from repro.errors import ConfigurationError
from repro.silicon.transistor import SiliconProfile
from repro.soc.catalog import sd800, sd810
from repro.soc.instance import Soc
from repro.soc.scheduler import (
    Placement,
    busy_core_count,
    idle_all,
    place_threads,
    sweep_thread_counts,
)
from repro.soc.throttling import StepwiseThrottle, ThrottlePolicy


def make_soc(spec=None) -> Soc:
    return Soc(
        spec=spec or sd810(),
        profile=SiliconProfile.nominal(),
        throttle=ThrottlePolicy(
            stepwise=StepwiseThrottle(throttle_temp_c=76.0, clear_temp_c=73.0)
        ),
    )


class TestPlacement:
    def test_big_first_fills_a57(self):
        soc = make_soc()
        assignment = place_threads(soc, 3, Placement.BIG_FIRST)
        assert assignment == {"a57": 3, "a53": 0}

    def test_big_first_spills_to_little(self):
        soc = make_soc()
        assignment = place_threads(soc, 6, Placement.BIG_FIRST)
        assert assignment == {"a57": 4, "a53": 2}

    def test_little_first(self):
        soc = make_soc()
        assignment = place_threads(soc, 3, Placement.LITTLE_FIRST)
        assert assignment == {"a53": 3, "a57": 0}

    def test_zero_threads_idles(self):
        soc = make_soc()
        place_threads(soc, 8)
        place_threads(soc, 0)
        assert busy_core_count(soc) == 0

    def test_overcommit_rejected(self):
        with pytest.raises(ConfigurationError):
            place_threads(make_soc(), 9)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            place_threads(make_soc(), -1)

    def test_respects_offline_cores(self):
        soc = make_soc()
        soc.clusters[0].set_online_count(2)  # two A57s hotplugged out
        assignment = place_threads(soc, 4, Placement.BIG_FIRST)
        assert assignment == {"a57": 2, "a53": 2}

    def test_busy_core_count(self):
        soc = make_soc()
        place_threads(soc, 5)
        assert busy_core_count(soc) == 5


class TestThroughputAndPower:
    def test_big_first_faster_than_little_first(self):
        big = make_soc()
        little = make_soc()
        place_threads(big, 2, Placement.BIG_FIRST)
        place_threads(little, 2, Placement.LITTLE_FIRST)
        _, ops_big = big.step(40.0, 0.0, 0.1)
        _, ops_little = little.step(40.0, 0.0, 0.1)
        assert ops_big > ops_little

    def test_little_first_cheaper(self):
        big = make_soc()
        little = make_soc()
        place_threads(big, 2, Placement.BIG_FIRST)
        place_threads(little, 2, Placement.LITTLE_FIRST)
        power_big, _ = big.step(40.0, 0.0, 0.1)
        power_little, _ = little.step(40.0, 0.0, 0.1)
        assert power_little < power_big

    def test_single_cluster_soc(self):
        soc = make_soc(sd800())
        assignment = place_threads(soc, 2)
        assert assignment == {"krait400": 2}


class TestSweep:
    def test_monotone_scaling(self):
        soc = make_soc()
        records = sweep_thread_counts(soc, die_temp_c=40.0)
        assert len(records) == 9  # 0..8 threads
        ops = [r["ops_per_s"] for r in records]
        power = [r["power_w"] for r in records]
        assert all(b >= a for a, b in zip(ops, ops[1:]))
        assert all(b >= a for a, b in zip(power, power[1:]))

    def test_sweep_leaves_soc_idle(self):
        soc = make_soc()
        sweep_thread_counts(soc, die_temp_c=40.0)
        assert busy_core_count(soc) == 0

    def test_idle_all(self):
        soc = make_soc()
        place_threads(soc, 8)
        idle_all(soc)
        assert busy_core_count(soc) == 0
