"""Performance model."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.perf import (
    PI_DIGITS_PER_ITERATION,
    PI_ITERATION_OPS,
    iterations_from_ops,
    ops_rate,
)


class TestAnchors:
    def test_digit_count_matches_paper(self):
        assert PI_DIGITS_PER_ITERATION == 4285

    def test_one_iteration_is_one_second_on_nexus6_core(self):
        # Paper Section III: 4,285 digits take ~1 s at the Nexus 6's top
        # frequency.  One Krait core at 2649 MHz retires exactly one
        # iteration per second.
        assert ops_rate(2649.0, 1.0) == pytest.approx(PI_ITERATION_OPS)


class TestOpsRate:
    def test_linear_in_frequency(self):
        assert ops_rate(2000.0, 1.0) == pytest.approx(2 * ops_rate(1000.0, 1.0))

    def test_linear_in_ipc(self):
        assert ops_rate(1000.0, 1.2) == pytest.approx(1.2 * ops_rate(1000.0, 1.0))

    def test_negative_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            ops_rate(-1.0, 1.0)

    def test_zero_ipc_rejected(self):
        with pytest.raises(ConfigurationError):
            ops_rate(1000.0, 0.0)


class TestIterations:
    def test_round_trip(self):
        assert iterations_from_ops(PI_ITERATION_OPS * 3) == pytest.approx(3.0)

    def test_fractional_iterations(self):
        assert iterations_from_ops(PI_ITERATION_OPS / 2) == pytest.approx(0.5)

    def test_negative_ops_rejected(self):
        with pytest.raises(ConfigurationError):
            iterations_from_ops(-1.0)

    def test_paper_scale_sanity(self):
        # Four Krait cores at 2265 MHz for 300 s: about a thousand
        # iterations -- the scale of the paper's Nexus 5 scores.
        ops = 4 * ops_rate(2265.0, 1.0) * 300.0
        assert 900 < iterations_from_ops(ops) < 1100
