"""Governors operating inside a running SoC."""

import pytest

from repro.silicon.transistor import SiliconProfile
from repro.soc.catalog import sd800
from repro.soc.dvfs import InteractiveGovernor, OndemandGovernor
from repro.soc.instance import Soc
from repro.soc.throttling import StepwiseThrottle, ThrottlePolicy


def make_soc() -> Soc:
    return Soc(
        spec=sd800(),
        profile=SiliconProfile.nominal(),
        throttle=ThrottlePolicy(
            stepwise=StepwiseThrottle(throttle_temp_c=78.0, clear_temp_c=75.0)
        ),
    )


class TestInteractiveInSoc:
    def test_ramp_visible_over_steps(self):
        soc = make_soc()
        soc.set_governor(
            InteractiveGovernor(hispeed_freq_mhz=1190.0, eval_interval_s=0.1)
        )
        soc.set_utilization(1.0)
        freqs = []
        for step in range(12):
            soc.step(die_temp_c=40.0, now_s=step * 0.1, dt=0.1)
            freqs.append(soc.frequencies_mhz()["krait400"])
        # First decision jumps to hispeed, later decisions climb to max.
        assert freqs[0] == 1190.0
        assert freqs[-1] == 2265.0
        assert freqs == sorted(freqs)

    def test_thermal_ceiling_overrides_ramp(self):
        soc = make_soc()
        soc.set_governor(
            InteractiveGovernor(hispeed_freq_mhz=1190.0, eval_interval_s=0.1)
        )
        soc.set_utilization(1.0)
        for step in range(20):
            soc.step(die_temp_c=40.0, now_s=step * 0.1, dt=0.1)
        # Now overheat: mitigation steps must drag the clock down even
        # though the governor wants the ceiling.
        for step in range(20, 30):
            soc.step(die_temp_c=85.0, now_s=float(step), dt=1.0)
        assert soc.frequencies_mhz()["krait400"] < 2265.0


class TestOndemandInSoc:
    def test_idles_down_between_bursts(self):
        soc = make_soc()
        soc.set_governor(OndemandGovernor())
        soc.set_utilization(1.0)
        soc.step(40.0, 0.0, 0.1)
        busy_freq = soc.frequencies_mhz()["krait400"]
        soc.set_utilization(0.0)
        for step in range(1, 12):
            soc.step(40.0, step * 0.1, 0.1)
        idle_freq = soc.frequencies_mhz()["krait400"]
        assert busy_freq == 2265.0
        assert idle_freq == 300.0

    def test_idle_power_far_below_busy(self):
        soc = make_soc()
        soc.set_governor(OndemandGovernor())
        soc.set_utilization(1.0)
        busy_power, _ = soc.step(40.0, 0.0, 0.1)
        soc.set_utilization(0.0)
        idle_power = None
        for step in range(1, 12):
            idle_power, _ = soc.step(40.0, step * 0.1, 0.1)
        assert idle_power < busy_power / 5
