"""Memory-bounded workload modelling."""

import pytest

from repro.errors import ConfigurationError
from repro.silicon.process import PROCESS_28NM_LP
from repro.silicon.transistor import SiliconProfile
from repro.silicon.vf_tables import nexus5_table
from repro.soc.cluster import ClusterSpec, ClusterState


def make_state(beta=0.0) -> ClusterState:
    spec = ClusterSpec(
        name="krait",
        core_count=4,
        freq_table_mhz=(300.0, 960.0, 1574.0, 2265.0),
        ipc=1.0,
        c_eff_f=0.3e-9,
        leak_ref_w=0.2,
        leak_ref_voltage_v=0.95,
        vf_table=nexus5_table(),
    )
    state = ClusterState(spec, PROCESS_28NM_LP, SiliconProfile.nominal(), 0)
    state.set_memory_boundedness(beta)
    state.set_utilization(1.0)
    return state


class TestOpsRate:
    def test_cpu_bound_is_linear_in_frequency(self):
        state = make_state(beta=0.0)
        state.set_frequency(960.0)
        low = state.ops_per_second()
        state.set_frequency(2265.0)
        high = state.ops_per_second()
        assert high / low == pytest.approx(2265.0 / 960.0)

    def test_memory_bound_sublinear_in_frequency(self):
        state = make_state(beta=0.5)
        state.set_frequency(960.0)
        low = state.ops_per_second()
        state.set_frequency(2265.0)
        high = state.ops_per_second()
        speedup = high / low
        assert 1.0 < speedup < 2265.0 / 960.0

    def test_beta_definition_at_top_frequency(self):
        # At the top frequency, rate = (1 - beta) x the CPU-bound rate.
        cpu = make_state(beta=0.0)
        mem = make_state(beta=0.4)
        for state in (cpu, mem):
            state.set_frequency(2265.0)
        assert mem.ops_per_second() == pytest.approx(
            0.6 * cpu.ops_per_second()
        )

    def test_extreme_boundedness_nearly_flat(self):
        state = make_state(beta=0.95)
        state.set_frequency(960.0)
        low = state.ops_per_second()
        state.set_frequency(2265.0)
        high = state.ops_per_second()
        assert high / low < 1.15

    def test_validation(self):
        state = make_state()
        with pytest.raises(ConfigurationError):
            state.set_memory_boundedness(1.0)
        with pytest.raises(ConfigurationError):
            state.set_memory_boundedness(-0.1)


class TestPower:
    def test_stalls_reduce_dynamic_power(self):
        cpu = make_state(beta=0.0)
        mem = make_state(beta=0.5)
        for state in (cpu, mem):
            state.set_frequency(2265.0)
        assert mem.power_w(40.0) < cpu.power_w(40.0)

    def test_leakage_unaffected_by_stalls(self):
        cpu = make_state(beta=0.0)
        mem = make_state(beta=0.5)
        for state in (cpu, mem):
            state.set_frequency(2265.0)
        assert mem.leakage_w(40.0) == pytest.approx(cpu.leakage_w(40.0))

    def test_cpu_share_grows_at_lower_clock(self):
        # Throttling a memory-bound task converges it back toward
        # CPU-bound behaviour (the stalls stop dominating).
        state = make_state(beta=0.5)
        state.set_frequency(2265.0)
        share_fast = state._cpu_time_share()
        state.set_frequency(960.0)
        share_slow = state._cpu_time_share()
        assert share_slow > share_fast
