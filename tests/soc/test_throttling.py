"""Thermal throttling policies."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.throttling import (
    CoreShutdownPolicy,
    MitigationState,
    StepwiseThrottle,
    ThrottlePolicy,
)


class TestStepwiseThrottle:
    @pytest.fixture
    def throttle(self) -> StepwiseThrottle:
        return StepwiseThrottle(
            throttle_temp_c=76.0, clear_temp_c=73.0, poll_interval_s=1.0
        )

    def test_cold_die_never_throttles(self, throttle):
        for t in range(10):
            assert throttle.update(50.0, float(t)) == 0

    def test_hot_die_steps_down_each_poll(self, throttle):
        assert throttle.update(80.0, 0.0) == 1
        assert throttle.update(80.0, 1.0) == 2
        assert throttle.update(80.0, 2.0) == 3

    def test_polls_between_intervals_do_nothing(self, throttle):
        assert throttle.update(80.0, 0.0) == 1
        assert throttle.update(80.0, 0.5) == 1

    def test_multiple_missed_polls_catch_up(self, throttle):
        assert throttle.update(80.0, 0.0) == 1
        assert throttle.update(80.0, 3.0) == 4

    def test_hysteresis_band_holds_state(self, throttle):
        throttle.update(80.0, 0.0)
        # 74 C is inside the band (73..76): no change either way.
        assert throttle.update(74.0, 1.0) == 1
        assert throttle.update(74.0, 2.0) == 1

    def test_cool_die_steps_back_up(self, throttle):
        throttle.update(80.0, 0.0)
        throttle.update(80.0, 1.0)
        assert throttle.update(70.0, 2.0) == 1
        assert throttle.update(70.0, 3.0) == 0

    def test_never_below_zero(self, throttle):
        assert throttle.update(20.0, 0.0) == 0
        assert throttle.update(20.0, 5.0) == 0

    def test_caps_at_max_steps(self):
        throttle = StepwiseThrottle(
            throttle_temp_c=76.0, clear_temp_c=73.0, max_steps=2
        )
        for t in range(6):
            steps = throttle.update(90.0, float(t))
        assert steps == 2

    def test_reset(self, throttle):
        throttle.update(80.0, 0.0)
        throttle.reset()
        assert throttle.steps == 0
        assert throttle.update(50.0, 0.0) == 0

    def test_inverted_band_rejected(self):
        with pytest.raises(ConfigurationError):
            StepwiseThrottle(throttle_temp_c=70.0, clear_temp_c=75.0)

    def test_zero_poll_rejected(self):
        with pytest.raises(ConfigurationError):
            StepwiseThrottle(
                throttle_temp_c=76.0, clear_temp_c=73.0, poll_interval_s=0.0
            )


class TestCoreShutdownPolicy:
    @pytest.fixture
    def policy(self) -> CoreShutdownPolicy:
        return CoreShutdownPolicy(
            critical_temp_c=80.0, restore_temp_c=75.0, max_offline=1
        )

    def test_shuts_one_core_at_critical(self, policy):
        assert policy.update(81.0, 0.0) == 1

    def test_never_exceeds_max_offline(self, policy):
        for t in range(5):
            offline = policy.update(85.0, float(t))
        assert offline == 1

    def test_restores_after_cooling(self, policy):
        policy.update(81.0, 0.0)
        assert policy.update(74.0, 1.0) == 0

    def test_band_holds(self, policy):
        policy.update(81.0, 0.0)
        assert policy.update(77.0, 1.0) == 1

    def test_reset(self, policy):
        policy.update(85.0, 0.0)
        policy.reset()
        assert policy.offline == 0

    def test_inverted_band_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreShutdownPolicy(critical_temp_c=70.0, restore_temp_c=75.0)


class TestThrottlePolicy:
    def test_combined_state(self):
        policy = ThrottlePolicy(
            stepwise=StepwiseThrottle(throttle_temp_c=76.0, clear_temp_c=73.0),
            shutdown=CoreShutdownPolicy(critical_temp_c=80.0, restore_temp_c=75.0),
        )
        state = policy.update(82.0, 0.0)
        assert state == MitigationState(ceiling_steps=1, offline_cores=1)

    def test_without_shutdown(self):
        policy = ThrottlePolicy(
            stepwise=StepwiseThrottle(throttle_temp_c=76.0, clear_temp_c=73.0)
        )
        state = policy.update(90.0, 0.0)
        assert state.offline_cores == 0
        assert state.ceiling_steps == 1

    def test_reset_clears_both(self):
        policy = ThrottlePolicy(
            stepwise=StepwiseThrottle(throttle_temp_c=76.0, clear_temp_c=73.0),
            shutdown=CoreShutdownPolicy(critical_temp_c=80.0, restore_temp_c=75.0),
        )
        policy.update(90.0, 0.0)
        policy.reset()
        state = policy.update(20.0, 0.0)
        assert state == MitigationState()
