"""The interactive governor."""

import pytest

from repro.errors import ConfigurationError
from repro.silicon.vf_tables import single_bin_table
from repro.soc.cluster import ClusterSpec
from repro.soc.dvfs import InteractiveGovernor


@pytest.fixture
def spec() -> ClusterSpec:
    freqs = (300.0, 600.0, 1200.0, 1800.0, 2265.0)
    return ClusterSpec(
        name="test",
        core_count=4,
        freq_table_mhz=freqs,
        ipc=1.0,
        c_eff_f=0.3e-9,
        leak_ref_w=0.1,
        leak_ref_voltage_v=0.9,
        vf_table=single_bin_table(freqs, (750.0, 800.0, 880.0, 980.0, 1080.0)),
    )


def governor() -> InteractiveGovernor:
    return InteractiveGovernor(
        hispeed_freq_mhz=1200.0,
        go_hispeed_load=0.85,
        above_hispeed_delay_s=0.2,
        eval_interval_s=0.1,
    )


class TestJumpBehaviour:
    def test_jumps_to_hispeed_on_load(self, spec):
        gov = governor()
        assert gov.target_frequency(spec, 1.0, 2265.0) == 1200.0

    def test_does_not_go_straight_to_max(self, spec):
        gov = governor()
        freq = gov.target_frequency(spec, 1.0, 2265.0)
        assert freq < 2265.0

    def test_climbs_after_dwell(self, spec):
        gov = governor()
        freqs = [gov.target_frequency(spec, 1.0, 2265.0) for _ in range(10)]
        assert freqs[0] == 1200.0
        assert freqs[-1] == 2265.0
        # Monotone climb, one step at a time after the dwell.
        assert all(b >= a for a, b in zip(freqs, freqs[1:]))

    def test_light_load_stays_low(self, spec):
        gov = governor()
        freqs = {gov.target_frequency(spec, 0.2, 2265.0) for _ in range(5)}
        assert max(freqs) <= 600.0

    def test_load_drop_falls_back(self, spec):
        gov = governor()
        for _ in range(10):
            gov.target_frequency(spec, 1.0, 2265.0)
        freq = gov.target_frequency(spec, 0.1, 2265.0)
        assert freq < 1200.0


class TestCeiling:
    def test_thermal_ceiling_caps_jump(self, spec):
        gov = governor()
        assert gov.target_frequency(spec, 1.0, 600.0) == 600.0

    def test_ceiling_drop_applies_immediately(self, spec):
        gov = governor()
        for _ in range(10):
            gov.target_frequency(spec, 1.0, 2265.0)
        assert gov.target_frequency(spec, 1.0, 1200.0) == 1200.0


class TestValidation:
    def test_bad_hispeed_rejected(self):
        with pytest.raises(ConfigurationError):
            InteractiveGovernor(hispeed_freq_mhz=0.0)

    def test_bad_load_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            InteractiveGovernor(hispeed_freq_mhz=1000.0, go_hispeed_load=1.5)

    def test_bad_eval_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            InteractiveGovernor(hispeed_freq_mhz=1000.0, eval_interval_s=0.0)
