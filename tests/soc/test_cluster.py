"""CPU clusters."""

import pytest

from repro.errors import ConfigurationError
from repro.silicon.process import PROCESS_28NM_LP
from repro.silicon.transistor import SiliconProfile
from repro.silicon.vf_tables import nexus5_table, single_bin_table
from repro.soc.cluster import ClusterSpec, ClusterState


def krait_spec() -> ClusterSpec:
    return ClusterSpec(
        name="krait",
        core_count=4,
        freq_table_mhz=(300.0, 960.0, 1574.0, 2265.0),
        ipc=1.0,
        c_eff_f=0.3e-9,
        leak_ref_w=0.2,
        leak_ref_voltage_v=0.95,
        vf_table=nexus5_table(),
    )


class TestClusterSpec:
    def test_properties(self):
        spec = krait_spec()
        assert spec.max_freq_mhz == 2265.0
        assert spec.min_freq_mhz == 300.0

    def test_freq_index(self):
        assert krait_spec().freq_index(960.0) == 1

    def test_freq_index_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            krait_spec().freq_index(1000.0)

    def test_nearest_freq_floor(self):
        assert krait_spec().nearest_freq_mhz(1000.0) == 960.0

    def test_nearest_freq_exact(self):
        assert krait_spec().nearest_freq_mhz(1574.0) == 1574.0

    def test_nearest_freq_below_ladder(self):
        assert krait_spec().nearest_freq_mhz(100.0) == 300.0

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(
                name="x", core_count=0, freq_table_mhz=(300.0,), ipc=1.0,
                c_eff_f=1e-9, leak_ref_w=0.1, leak_ref_voltage_v=0.9,
                vf_table=single_bin_table((300.0, 400.0), (800.0, 850.0)),
            )

    def test_unsorted_ladder_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(
                name="x", core_count=1, freq_table_mhz=(960.0, 300.0), ipc=1.0,
                c_eff_f=1e-9, leak_ref_w=0.1, leak_ref_voltage_v=0.9,
                vf_table=single_bin_table((300.0, 960.0), (800.0, 850.0)),
            )


class TestClusterState:
    @pytest.fixture
    def state(self) -> ClusterState:
        return ClusterState(
            spec=krait_spec(),
            process=PROCESS_28NM_LP,
            profile=SiliconProfile.nominal(),
            bin_index=0,
        )

    def test_starts_at_min_frequency(self, state):
        assert state.freq_mhz == 300.0

    def test_set_frequency_validates(self, state):
        with pytest.raises(ConfigurationError):
            state.set_frequency(1000.0)

    def test_voltage_follows_bin_row(self, state):
        state.set_frequency(2265.0)
        assert state.voltage_v() == pytest.approx(1.1)

    def test_bin3_voltage_lower(self):
        state = ClusterState(
            krait_spec(), PROCESS_28NM_LP, SiliconProfile.nominal(), bin_index=3
        )
        state.set_frequency(2265.0)
        assert state.voltage_v() == pytest.approx(1.025)

    def test_invalid_bin_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterState(
                krait_spec(), PROCESS_28NM_LP, SiliconProfile.nominal(), bin_index=9
            )

    def test_voltage_adjust_applies(self, state):
        state.set_frequency(960.0)
        base = state.voltage_v()
        state.voltage_adjust_v = 0.05
        assert state.voltage_v() == pytest.approx(base + 0.05)

    def test_voltage_adjust_cannot_go_non_positive(self, state):
        state.voltage_adjust_v = -5.0
        with pytest.raises(ConfigurationError):
            state.voltage_v()

    def test_power_zero_when_idle_except_leakage(self, state):
        state.set_frequency(2265.0)
        state.set_utilization(0.0)
        power = state.power_w(40.0)
        assert power == pytest.approx(state.leakage_w(40.0))
        assert power > 0.0

    def test_power_grows_with_utilization(self, state):
        state.set_frequency(2265.0)
        state.set_utilization(0.5)
        half = state.power_w(40.0)
        state.set_utilization(1.0)
        full = state.power_w(40.0)
        assert full > half

    def test_power_grows_with_temperature(self, state):
        state.set_frequency(2265.0)
        state.set_utilization(1.0)
        assert state.power_w(80.0) > state.power_w(40.0)

    def test_offline_cores_drop_power_and_ops(self, state):
        state.set_frequency(2265.0)
        state.set_utilization(1.0)
        full_power = state.power_w(40.0)
        full_ops = state.ops_per_second()
        state.set_online_count(3)
        assert state.power_w(40.0) == pytest.approx(full_power * 3 / 4)
        assert state.ops_per_second() == pytest.approx(full_ops * 3 / 4)

    def test_hotplug_order_highest_index_first(self, state):
        state.set_online_count(2)
        assert [core.online for core in state.cores] == [True, True, False, False]

    def test_hotplug_range_validated(self, state):
        with pytest.raises(ConfigurationError):
            state.set_online_count(5)

    def test_ops_rate_formula(self, state):
        state.set_frequency(2265.0)
        state.set_utilization(1.0)
        assert state.ops_per_second() == pytest.approx(4 * 2265e6 * 1.0)

    def test_online_count(self, state):
        assert state.online_count == 4
        state.set_online_count(1)
        assert state.online_count == 1
