"""RBCPR adaptive voltage."""

import pytest

from repro.errors import ConfigurationError
from repro.silicon.process import PROCESS_20NM_PLANAR
from repro.silicon.transistor import SiliconProfile
from repro.soc.rbcpr import RbcprBlock


@pytest.fixture
def block() -> RbcprBlock:
    return RbcprBlock(process=PROCESS_20NM_PLANAR)


class TestMargin:
    def test_full_margin_at_reference(self, block):
        assert block.margin_mv(block.reference_temp_c) == block.base_margin_mv

    def test_margin_shrinks_with_heat(self, block):
        assert block.margin_mv(60.0) < block.margin_mv(30.0)

    def test_margin_floor(self, block):
        assert block.margin_mv(500.0) == block.min_margin_mv

    def test_margin_not_raised_below_reference(self, block):
        assert block.margin_mv(0.0) == block.base_margin_mv


class TestVoltageAdjust:
    def test_nominal_die_gets_margin_only(self, block):
        adjust = block.voltage_adjust_v(SiliconProfile.nominal(), 25.0)
        assert adjust == pytest.approx(block.base_margin_mv / 1000.0)

    def test_slow_die_gets_more_voltage(self, block):
        slow = SiliconProfile.from_vth_delta(PROCESS_20NM_PLANAR, +0.02)
        fast = SiliconProfile.from_vth_delta(PROCESS_20NM_PLANAR, -0.02)
        assert block.voltage_adjust_v(slow, 25.0) > block.voltage_adjust_v(fast, 25.0)

    def test_compensation_is_partial(self, block):
        # The loop recovers only part of the ideal compensation: the
        # difference between two dies must be compensation_factor x the
        # full volt_per_vth swing.
        slow = SiliconProfile.from_vth_delta(PROCESS_20NM_PLANAR, +0.02)
        fast = SiliconProfile.from_vth_delta(PROCESS_20NM_PLANAR, -0.02)
        swing = block.voltage_adjust_v(slow, 25.0) - block.voltage_adjust_v(fast, 25.0)
        ideal = PROCESS_20NM_PLANAR.volt_per_vth * 0.04
        assert swing == pytest.approx(block.compensation_factor * ideal)

    def test_hot_die_voltage_drops(self, block):
        nominal = SiliconProfile.nominal()
        assert block.voltage_adjust_v(nominal, 80.0) < block.voltage_adjust_v(
            nominal, 25.0
        )


class TestValidation:
    def test_bad_compensation_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            RbcprBlock(process=PROCESS_20NM_PLANAR, compensation_factor=1.5)

    def test_min_margin_above_base_rejected(self):
        with pytest.raises(ConfigurationError):
            RbcprBlock(
                process=PROCESS_20NM_PLANAR, base_margin_mv=20.0, min_margin_mv=30.0
            )

    def test_negative_recovery_rejected(self):
        with pytest.raises(ConfigurationError):
            RbcprBlock(process=PROCESS_20NM_PLANAR, margin_recovery_mv_per_c=-0.1)
