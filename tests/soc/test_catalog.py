"""SoC catalog."""

import pytest

from repro.errors import UnknownModelError
from repro.soc.catalog import (
    SOC_NAMES,
    VoltageMode,
    sd800,
    sd805,
    sd810,
    sd820,
    sd821,
    soc_by_name,
)


class TestCatalogShape:
    def test_all_five_generations(self):
        assert SOC_NAMES == ("SD-800", "SD-805", "SD-810", "SD-820", "SD-821")

    def test_lookup(self):
        assert soc_by_name("SD-800").name == "SD-800"

    def test_unknown_rejected(self):
        with pytest.raises(UnknownModelError):
            soc_by_name("SD-888")

    def test_years_ascend(self):
        years = [soc_by_name(n).year for n in SOC_NAMES]
        assert years == sorted(years)


class TestSd800:
    def test_topology(self):
        soc = sd800()
        assert soc.total_cores == 4
        assert len(soc.clusters) == 1
        assert soc.clusters[0].max_freq_mhz == 2265.0

    def test_uses_paper_table1(self):
        soc = sd800()
        assert soc.bin_count == 7
        assert soc.clusters[0].vf_table.voltage_mv(0, 2265.0) == 1100.0

    def test_binned_voltage_mode(self):
        assert sd800().voltage_mode is VoltageMode.BINNED

    def test_28nm(self):
        assert sd800().process.feature_nm == 28.0


class TestSd805:
    def test_higher_clock_than_sd800(self):
        assert sd805().clusters[0].max_freq_mhz == 2649.0

    def test_still_binned_and_28nm(self):
        soc = sd805()
        assert soc.voltage_mode is VoltageMode.BINNED
        assert soc.process.feature_nm == 28.0
        assert soc.bin_count == 7

    def test_generated_table_resembles_table1_structure(self):
        table = sd805().clusters[0].vf_table
        # Bin voltages drop monotonically with bin index at top frequency.
        top = [table.row_mv(b)[-1] for b in range(table.bin_count)]
        assert top == sorted(top, reverse=True)


class TestSd810:
    def test_big_little(self):
        soc = sd810()
        assert soc.total_cores == 8
        names = [c.name for c in soc.clusters]
        assert names == ["a57", "a53"]

    def test_adaptive_voltage(self):
        assert sd810().voltage_mode is VoltageMode.ADAPTIVE

    def test_single_exposed_bin(self):
        # "All our devices reported being on 'speed-bin 0'" (paper IV-A2).
        assert sd810().bin_count == 1

    def test_little_cores_weaker(self):
        soc = sd810()
        a57, a53 = soc.clusters
        assert a53.ipc < a57.ipc
        assert a53.c_eff_f < a57.c_eff_f


class TestKryoGenerations:
    def test_sd820_topology(self):
        soc = sd820()
        assert soc.total_cores == 4
        assert [c.core_count for c in soc.clusters] == [2, 2]

    def test_sd821_is_refined_sd820(self):
        g820, g821 = sd820(), sd821()
        assert g821.process is g820.process
        # The respin is slightly more efficient: lower capacitance/leakage.
        assert g821.clusters[0].c_eff_f < g820.clusters[0].c_eff_f
        assert g821.clusters[0].leak_ref_w < g820.clusters[0].leak_ref_w

    def test_14nm(self):
        assert sd820().process.feature_nm == 14.0
        assert sd821().process.feature_nm == 14.0

    def test_core_count_reduced_from_sd810(self):
        # Paper IV-A3: "a reduction in core count from the SD-810's
        # octa-core CPU possibly due to ... thermal throttling".
        assert sd820().total_cores < sd810().total_cores
