"""Running SoC instances."""

import pytest

from repro.errors import ConfigurationError
from repro.silicon.transistor import SiliconProfile
from repro.soc.catalog import sd800, sd810
from repro.soc.dvfs import UserspaceGovernor
from repro.soc.instance import Soc
from repro.soc.rbcpr import RbcprBlock
from repro.soc.throttling import (
    CoreShutdownPolicy,
    StepwiseThrottle,
    ThrottlePolicy,
)


def make_policy() -> ThrottlePolicy:
    return ThrottlePolicy(
        stepwise=StepwiseThrottle(throttle_temp_c=76.0, clear_temp_c=73.0),
        shutdown=CoreShutdownPolicy(critical_temp_c=80.0, restore_temp_c=75.0),
    )


def make_soc(profile=None, bin_index=0) -> Soc:
    return Soc(
        spec=sd800(),
        profile=profile or SiliconProfile.nominal(),
        throttle=make_policy(),
        bin_index=bin_index,
    )


class TestConstruction:
    def test_binned_soc_refuses_rbcpr(self):
        with pytest.raises(ConfigurationError):
            Soc(
                spec=sd800(),
                profile=SiliconProfile.nominal(),
                throttle=make_policy(),
                rbcpr=RbcprBlock(process=sd800().process),
            )

    def test_adaptive_soc_gets_default_rbcpr(self):
        soc = Soc(
            spec=sd810(),
            profile=SiliconProfile.nominal(),
            throttle=make_policy(),
        )
        assert soc.rbcpr is not None

    def test_adaptive_soc_ignores_bin_index(self):
        soc = Soc(
            spec=sd810(),
            profile=SiliconProfile.nominal(),
            throttle=make_policy(),
            bin_index=5,
        )
        assert soc.bin_index == 0


class TestStep:
    def test_cool_die_runs_at_max(self):
        soc = make_soc()
        soc.set_utilization(1.0)
        power, ops = soc.step(die_temp_c=40.0, now_s=0.0, dt=0.1)
        assert soc.frequencies_mhz()["krait400"] == 2265.0
        assert power > 1.0
        assert ops > 0.0

    def test_hot_die_throttles(self):
        soc = make_soc()
        soc.set_utilization(1.0)
        for step in range(5):
            soc.step(die_temp_c=78.0, now_s=float(step), dt=1.0)
        assert soc.frequencies_mhz()["krait400"] < 2265.0
        assert soc.mitigation.ceiling_steps > 0

    def test_critical_die_sheds_core(self):
        soc = make_soc()
        soc.set_utilization(1.0)
        soc.step(die_temp_c=81.0, now_s=0.0, dt=0.1)
        assert soc.online_cores() == 3

    def test_external_ceiling_caps_frequency(self):
        soc = make_soc()
        soc.set_utilization(1.0)
        soc.external_ceiling_mhz = 1000.0
        soc.step(die_temp_c=40.0, now_s=0.0, dt=0.1)
        assert soc.frequencies_mhz()["krait400"] == 960.0

    def test_leaky_die_burns_more(self):
        leaky = make_soc(
            SiliconProfile(vth_delta=-0.02, speed_factor=1.05, leak_factor=2.0)
        )
        nominal = make_soc()
        for soc in (leaky, nominal):
            soc.set_utilization(1.0)
        p_leaky, _ = leaky.step(60.0, 0.0, 0.1)
        p_nominal, _ = nominal.step(60.0, 0.0, 0.1)
        assert p_leaky > p_nominal

    def test_bin_affects_voltage_and_power(self):
        bin0 = make_soc(bin_index=0)
        bin6 = make_soc(bin_index=6)
        for soc in (bin0, bin6):
            soc.set_utilization(1.0)
            soc.step(40.0, 0.0, 0.1)
        assert bin0.voltages_v()["krait400"] > bin6.voltages_v()["krait400"]

    def test_ops_scale_with_dt(self):
        soc = make_soc()
        soc.set_utilization(1.0)
        _, ops_small = soc.step(40.0, 0.0, 0.1)
        soc2 = make_soc()
        soc2.set_utilization(1.0)
        _, ops_big = soc2.step(40.0, 0.0, 0.2)
        assert ops_big == pytest.approx(2 * ops_small)

    def test_non_positive_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            make_soc().step(40.0, 0.0, 0.0)


class TestGovernors:
    def test_set_governor_single_cluster(self):
        soc = Soc(
            spec=sd810(), profile=SiliconProfile.nominal(), throttle=make_policy()
        )
        soc.set_utilization(1.0)
        soc.set_governor(UserspaceGovernor(fixed_mhz=384.0), cluster="a57")
        soc.step(40.0, 0.0, 0.1)
        freqs = soc.frequencies_mhz()
        assert freqs["a57"] == 384.0
        assert freqs["a53"] == 1555.0  # untouched cluster stays on performance

    def test_unknown_cluster_rejected(self):
        soc = make_soc()
        with pytest.raises(ConfigurationError):
            soc.set_governor(UserspaceGovernor(fixed_mhz=300.0), cluster="gpu")


class TestReset:
    def test_reset_restores_boot_state(self):
        soc = make_soc()
        soc.set_utilization(1.0)
        for step in range(5):
            soc.step(85.0, float(step), 1.0)
        assert soc.online_cores() < 4
        soc.reset()
        assert soc.online_cores() == 4
        assert soc.mitigation.ceiling_steps == 0
        assert soc.frequencies_mhz()["krait400"] == 300.0


class TestRbcprIntegration:
    def test_adaptive_voltage_differs_between_dies(self):
        fast = SiliconProfile.from_vth_delta(sd810().process, -0.02)
        slow = SiliconProfile.from_vth_delta(sd810().process, +0.02)
        results = {}
        for label, profile in (("fast", fast), ("slow", slow)):
            soc = Soc(spec=sd810(), profile=profile, throttle=make_policy())
            soc.set_utilization(1.0)
            soc.step(40.0, 0.0, 0.1)
            results[label] = soc.voltages_v()["a57"]
        assert results["slow"] > results["fast"]
