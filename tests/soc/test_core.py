"""Per-core runtime state."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.core import CoreState


class TestCoreState:
    def test_defaults(self):
        core = CoreState(index=0)
        assert core.online
        assert core.utilization == 0.0

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreState(index=-1)

    def test_set_utilization(self):
        core = CoreState(index=0)
        core.set_utilization(0.75)
        assert core.utilization == 0.75

    def test_out_of_range_utilization_rejected(self):
        core = CoreState(index=0)
        with pytest.raises(ConfigurationError):
            core.set_utilization(1.5)
        with pytest.raises(ConfigurationError):
            core.set_utilization(-0.1)

    def test_constructor_validates_utilization(self):
        with pytest.raises(ConfigurationError):
            CoreState(index=0, utilization=2.0)

    def test_offline_core_has_zero_active_utilization(self):
        core = CoreState(index=1, utilization=1.0)
        core.online = False
        assert core.active_utilization == 0.0

    def test_online_core_active_utilization(self):
        core = CoreState(index=1, utilization=0.8)
        assert core.active_utilization == 0.8
