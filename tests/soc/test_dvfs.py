"""DVFS governors."""

import pytest

from repro.errors import ConfigurationError
from repro.silicon.vf_tables import single_bin_table
from repro.soc.cluster import ClusterSpec
from repro.soc.dvfs import OndemandGovernor, PerformanceGovernor, UserspaceGovernor


@pytest.fixture
def spec() -> ClusterSpec:
    freqs = (300.0, 600.0, 1200.0, 1800.0, 2265.0)
    return ClusterSpec(
        name="test",
        core_count=4,
        freq_table_mhz=freqs,
        ipc=1.0,
        c_eff_f=0.3e-9,
        leak_ref_w=0.1,
        leak_ref_voltage_v=0.9,
        vf_table=single_bin_table(freqs, (750.0, 800.0, 880.0, 980.0, 1080.0)),
    )


class TestPerformanceGovernor:
    def test_requests_ceiling(self, spec):
        gov = PerformanceGovernor()
        assert gov.target_frequency(spec, 1.0, 2265.0) == 2265.0

    def test_honours_lower_ceiling(self, spec):
        gov = PerformanceGovernor()
        assert gov.target_frequency(spec, 1.0, 1800.0) == 1800.0

    def test_rounds_ceiling_down_to_ladder(self, spec):
        gov = PerformanceGovernor()
        assert gov.target_frequency(spec, 1.0, 1500.0) == 1200.0

    def test_ignores_utilization(self, spec):
        gov = PerformanceGovernor()
        assert gov.target_frequency(spec, 0.0, 2265.0) == 2265.0


class TestUserspaceGovernor:
    def test_pins_frequency(self, spec):
        gov = UserspaceGovernor(fixed_mhz=600.0)
        assert gov.target_frequency(spec, 1.0, 2265.0) == 600.0

    def test_thermal_ceiling_still_wins(self, spec):
        gov = UserspaceGovernor(fixed_mhz=1800.0)
        assert gov.target_frequency(spec, 1.0, 1200.0) == 1200.0

    def test_off_ladder_pin_rejected(self, spec):
        gov = UserspaceGovernor(fixed_mhz=1000.0)
        with pytest.raises(ConfigurationError):
            gov.target_frequency(spec, 1.0, 2265.0)


class TestOndemandGovernor:
    def test_jumps_to_ceiling_when_busy(self, spec):
        gov = OndemandGovernor()
        assert gov.target_frequency(spec, 0.95, 2265.0) == 2265.0

    def test_steps_down_when_idle(self, spec):
        gov = OndemandGovernor()
        gov.target_frequency(spec, 1.0, 2265.0)
        for _ in range(10):
            freq = gov.target_frequency(spec, 0.0, 2265.0)
        assert freq == 300.0

    def test_respects_ceiling_when_busy(self, spec):
        gov = OndemandGovernor()
        assert gov.target_frequency(spec, 1.0, 1250.0) == 1200.0

    def test_moderate_load_finds_middle_frequency(self, spec):
        gov = OndemandGovernor()
        gov.target_frequency(spec, 1.0, 2265.0)  # start at top
        freq = gov.target_frequency(spec, 0.3, 2265.0)
        assert 300.0 <= freq < 2265.0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            OndemandGovernor(up_threshold=0.0)

    def test_invalid_margin_rejected(self):
        with pytest.raises(ConfigurationError):
            OndemandGovernor(down_margin=1.0)
