"""Calibration harness: prints headline numbers vs the paper's targets.

Run after editing catalog constants:

    python scripts/calibrate.py [model ...]

Targets (paper Table II and figures):
  SD-800/Nexus 5     perf 14%   energy 19%
  SD-805/Nexus 6     perf  2%   energy  2%
  SD-810/Nexus 6P    perf 10%   energy 12%
  SD-820/LG G5       perf  4%   energy 10%
  SD-821/Pixel       perf  5%   energy  9%
  FIXED-FREQ perf repeatability RSD < ~3%
  Fig 13: SD-805 less efficient than SD-800
"""

from __future__ import annotations

import sys
import time

from repro import (
    AccubenchConfig,
    CampaignConfig,
    CampaignRunner,
    device_spec,
    fixed_frequency,
    unconstrained,
)
from repro.core.analysis import performance_variation
from repro.device.catalog import DEVICE_NAMES

TARGETS = {
    "Nexus 5": (0.14, 0.19),
    "Nexus 6": (0.02, 0.02),
    "Nexus 6P": (0.10, 0.12),
    "LG G5": (0.04, 0.10),
    "Google Pixel": (0.05, 0.09),
}


def main() -> None:
    models = sys.argv[1:] or list(DEVICE_NAMES)
    config = CampaignConfig(accubench=AccubenchConfig(iterations=2))
    runner = CampaignRunner(config)
    efficiencies = {}
    for model in models:
        target_perf, target_energy = TARGETS[model]
        spec = device_spec(model)
        start = time.time()
        perf = runner.run_fleet(model, unconstrained())
        energy = runner.run_fleet(model, fixed_frequency(spec))
        wall = time.time() - start
        fixed_perf_rsd = performance_variation(
            [d.performance for d in energy.devices]
        )
        eff = {d.serial: d.efficiency_iters_per_kj for d in perf.devices}
        efficiencies[model] = sum(eff.values()) / len(eff)
        print(f"\n=== {model} ({spec.soc_name})  wall={wall:.0f}s ===")
        print(f"  perf variation   {perf.performance_variation:6.1%}  (target {target_perf:.0%})")
        print(f"  energy variation {energy.energy_variation:6.1%}  (target {target_energy:.0%})")
        print(f"  fixed-freq perf spread {fixed_perf_rsd:6.2%} (want < ~3%)")
        print(f"  mean perf RSD    {perf.mean_performance_rsd:6.2%}")
        for d in perf.devices:
            it = d.iterations[0]
            print(
                f"    {d.serial:12s} perf={d.performance:7.1f}"
                f" meanfreq={d.mean_freq_mhz:6.0f}"
                f" maxT={it.max_cpu_temp_c:5.1f}C"
                f" throttled={it.time_throttled_s:5.0f}s"
                f" cooldown={it.cooldown_s:5.0f}s"
                f" eff={eff[d.serial]:6.1f} it/kJ"
            )
        for d in energy.devices:
            print(
                f"    {d.serial:12s} E={d.energy_j:7.1f}J"
                f" perf={d.performance:7.1f}"
                f" maxT={d.iterations[0].max_cpu_temp_c:5.1f}C"
            )
    print("\nEfficiency (UNCONSTRAINED iters/kJ):")
    for model, value in efficiencies.items():
        print(f"  {model:14s} {value:7.1f}")


if __name__ == "__main__":
    main()
