#!/usr/bin/env python
"""Live-telemetry smoke test: scrape a streamed crowd run over HTTP.

Launches the real CLI (``repro.cli crowd --stream --serve 0``) as a
subprocess, discovers the ephemeral endpoint from its stderr banner,
then — while the campaign is still folding cohorts — polls ``/status``
and ``/metrics`` like an external monitoring agent would:

* ``/status`` must answer well-formed ``repro-status-v1`` documents and
  ``campaign.users_done`` must advance between two mid-run scrapes,
* ``/metrics`` must parse under the strict reference Prometheus parser
  and carry the headline ``repro_engine_steps`` counter,
* after exit the run's ``repro-manifest-v1`` manifest must round-trip
  and agree with the summary document on the campaign fingerprint.

Exits nonzero on any failure. Tunables: ``--users``, ``--scale``,
``--out`` (artifact directory, default a temp dir).
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.obs.export import parse_prometheus_text  # noqa: E402
from repro.obs.manifest import read_manifest  # noqa: E402

BANNER = re.compile(r"serving telemetry at (http://\S+)")
STARTUP_TIMEOUT_S = 60.0
RUN_TIMEOUT_S = 300.0


def fetch(url: str, timeout: float = 5.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode()


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.11 stdlib typing
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def scrape_until_exit(proc, url):
    """Poll the endpoint until the run finishes; return what we saw."""
    progress = []  # distinct users_done values observed mid-run
    metrics_names = set()
    scrapes = 0
    while proc.poll() is None:
        try:
            status = json.loads(fetch(f"{url}/status"))
        except OSError:
            continue  # endpoint winding down as the run finishes
        scrapes += 1
        if status.get("format") != "repro-status-v1":
            fail(f"/status answered {status.get('format')!r}")
        done = status.get("campaign", {}).get("users_done", 0)
        if done and (not progress or done != progress[-1]):
            progress.append(done)
        try:
            parsed = parse_prometheus_text(fetch(f"{url}/metrics"))
        except OSError:
            continue
        metrics_names |= {sample["name"] for sample in parsed["samples"]}
        time.sleep(0.05)
    return progress, metrics_names, scrapes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=64)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--cohort-size", type=int, default=8)
    parser.add_argument(
        "--out", default=None,
        help="directory for the summary + manifest artifacts "
        "(default: a temp dir)",
    )
    args = parser.parse_args(argv)

    out_dir = args.out or tempfile.mkdtemp(prefix="telemetry-smoke-")
    os.makedirs(out_dir, exist_ok=True)
    summary_path = os.path.join(out_dir, "smoke-crowd.json")

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "repro.cli", "crowd",
        "--users", str(args.users), "--scale", str(args.scale),
        "--seed", "11", "--stream", "--cohort-size", str(args.cohort_size),
        "--serve", "0", "--json", summary_path,
    ]
    print(f"launching: {' '.join(command)}")
    proc = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env,
    )
    try:
        started = time.monotonic()
        url = None
        for line in proc.stderr:
            match = BANNER.search(line)
            if match:
                url = match.group(1)
                break
            if time.monotonic() - started > STARTUP_TIMEOUT_S:
                break
        if url is None:
            fail("no 'serving telemetry at' banner on stderr")
        print(f"scraping {url}")

        progress, metrics_names, scrapes = scrape_until_exit(proc, url)
        stdout, _ = proc.communicate(timeout=RUN_TIMEOUT_S)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    if proc.returncode != 0:
        fail(f"crowd run exited {proc.returncode}\n{stdout}")

    if len(progress) < 2:
        fail(
            f"users_done advanced through {progress} over {scrapes} "
            f"scrapes — need two distinct mid-run values (raise --users "
            f"or --scale so the run outlives the scraper)"
        )
    if "repro_engine_steps" not in metrics_names:
        fail(f"/metrics never carried repro_engine_steps: {metrics_names}")

    with open(summary_path) as fp:
        summary = json.load(fp)
    manifest = read_manifest(summary_path + ".manifest.json")
    if manifest["kind"] != "crowd-stream":
        fail(f"manifest kind {manifest['kind']!r}")
    if manifest["fingerprint"] != summary["fingerprint"]:
        fail("manifest and summary disagree on the campaign fingerprint")

    print(
        f"PASS: {scrapes} scrapes, users_done advanced "
        f"{progress[0]} -> {progress[-1]}, "
        f"{len(metrics_names)} metric series, manifest "
        f"{manifest['fingerprint'][:16]}… round-trips (artifacts in "
        f"{out_dir})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
