"""Figure 3: the THERMABOX controlled thermal environment.

The paper's chamber holds 26 ± 0.5 °C around a running phone.  This bench
reproduces the regulation behaviour: settle from a cool room, then hold
the band for half an hour while the device under test dumps heat inside.
"""

from repro.instruments.thermabox import Thermabox, ThermaboxConfig

ROOM_C = 22.0
HOLD_S = 1800
DEVICE_LOAD_W = 4.0


def regulation_trace():
    box = Thermabox(ThermaboxConfig(), initial_temp_c=ROOM_C)
    box.wait_until_stable(ROOM_C)
    errors = []
    for _ in range(HOLD_S):
        box.step(ROOM_C, 1.0, load_w=DEVICE_LOAD_W)
        errors.append(box.air_temp_c - box.config.target_c)
    return box, errors


def test_fig03_thermabox_regulation(benchmark):
    box, errors = benchmark.pedantic(regulation_trace, rounds=1, iterations=1)
    worst = max(abs(e) for e in errors)
    mean_error = sum(errors) / len(errors)
    heater_duty = box.heater_duty_seconds / (HOLD_S + 1e-9)

    print(
        f"\nFig 3: THERMABOX holding {box.config.target_c} C against a "
        f"{ROOM_C} C room with a {DEVICE_LOAD_W} W device inside:"
        f"\n  worst excursion {worst:.2f} C (spec ±{box.config.tolerance_c} C)"
        f"\n  mean error {mean_error:+.3f} C"
        f"\n  heater duty {heater_duty:.1%}, compressor duty "
        f"{box.cooler_duty_seconds / HOLD_S:.1%}"
    )

    assert worst <= box.config.tolerance_c
    assert abs(mean_error) < 0.3


def test_fig03_thermabox_settles_from_hot_room(benchmark):
    def settle():
        box = Thermabox(ThermaboxConfig(), initial_temp_c=31.0)
        return box.wait_until_stable(room_temp_c=29.0), box

    settle_s, box = benchmark.pedantic(settle, rounds=1, iterations=1)
    print(f"\nFig 3 (settle): from 31 C in a 29 C room: stable in {settle_s:.0f} s")
    assert box.is_within_band()
    assert settle_s < 1800.0
