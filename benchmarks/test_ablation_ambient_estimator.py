"""Future work (paper §VI): cooldown-phase ambient estimation accuracy.

"Preliminary results on using the cooldown phase as an estimate of ambient
temperature are encouraging."  This bench quantifies the claim on the
simulated Nexus 5: probe accuracy across rooms and observation windows,
plus the property the crowd pipeline actually relies on — that *relative*
room differences are recovered almost exactly.
"""

from repro.core.ambient_estimation import cooldown_probe
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.thermal.ambient import ConstantAmbient

AMBIENTS_C = (14.0, 22.0, 30.0, 38.0)
WINDOWS_S = (300.0, 900.0)


def probe(ambient_c: float, observe_s: float):
    device = build_device(PAPER_FLEETS["Nexus 5"][1], initial_temp_c=ambient_c)
    device.connect_supply(MonsoonPowerMonitor(3.8))
    return cooldown_probe(
        device, ConstantAmbient(ambient_c), observe_s=observe_s
    )


def test_ablation_ambient_estimator(benchmark):
    def sweep():
        return {
            window: {ambient: probe(ambient, window) for ambient in AMBIENTS_C}
            for window in WINDOWS_S
        }

    estimates = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n§VI ambient estimator accuracy (Nexus 5, heat-then-observe probe):")
    for window, by_ambient in estimates.items():
        errors = [
            by_ambient[a].ambient_c - a for a in AMBIENTS_C
        ]
        print(
            f"  observe {window:4.0f} s: errors "
            + ", ".join(f"{e:+.1f}C" for e in errors)
        )

    long_window = estimates[WINDOWS_S[-1]]
    # Absolute accuracy: within a few degrees, uncalibrated.
    for ambient in AMBIENTS_C:
        assert abs(long_window[ambient].ambient_c - ambient) < 4.0
    # Relative accuracy: room-to-room differences within 1.5 °C per 8 °C
    # true spacing — what strict filters and ranking need.
    values = [long_window[a].ambient_c for a in AMBIENTS_C]
    for (a_lo, v_lo), (a_hi, v_hi) in zip(
        zip(AMBIENTS_C, values), zip(AMBIENTS_C[1:], values[1:])
    ):
        assert abs((v_hi - v_lo) - (a_hi - a_lo)) < 1.5
    # A longer observation window does not hurt mean accuracy.
    def mean_abs_error(window):
        return sum(
            abs(estimates[window][a].ambient_c - a) for a in AMBIENTS_C
        ) / len(AMBIENTS_C)

    assert mean_abs_error(WINDOWS_S[-1]) <= mean_abs_error(WINDOWS_S[0]) + 0.5
    # Every fit is confident enough to pass the crowd filter.
    for by_ambient in estimates.values():
        for estimate in by_ambient.values():
            assert estimate.is_confident(min_r_squared=0.9)
