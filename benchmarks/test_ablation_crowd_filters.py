"""Future work (paper §VI): do "strict filters" rescue crowdsourced data?

Simulates the proposed in-the-wild study: a crowd of users with different
silicon, rooms and battery levels run the benchmark app; each submission
carries the cooldown-probe ambient estimate.  Raw cross-user comparisons
confound silicon with room temperature; filtering to an
estimated-ambient band recovers the silicon ranking.
"""

from repro.core.crowd import (
    CrowdConfig,
    run_crowd_study,
    silicon_ranking_quality,
    spearman_rank_correlation,
    strict_filters,
)

USERS = 36


def test_ablation_crowd_strict_filters(benchmark):
    def run():
        config = CrowdConfig(user_count=USERS, root_seed=5)
        submissions = run_crowd_study(config)
        filtered = strict_filters(submissions, ambient_band_c=(22.0, 30.0))
        return submissions, filtered

    submissions, filtered = benchmark.pedantic(run, rounds=1, iterations=1)
    raw_quality = silicon_ranking_quality(submissions)
    filtered_quality = silicon_ranking_quality(filtered)

    # Ambient leaks into raw scores: correlate score with the user's room.
    ambient_confound = spearman_rank_correlation(
        [s.true_ambient_c for s in submissions],
        [s.score for s in submissions],
    )

    print(
        f"\n§VI crowd study: {len(submissions)} submissions, "
        f"{len(filtered)} survive strict filters"
        f"\n  ambient→score confound (raw):     ρ = {ambient_confound:+.2f}"
        f"\n  silicon ranking quality (raw):    ρ = {raw_quality:+.2f}"
        f"\n  silicon ranking quality (filtered): ρ = {filtered_quality:+.2f}"
    )

    # Enough users survive to compare.
    assert len(filtered) >= 6
    # Room temperature measurably pollutes raw scores...
    assert ambient_confound < -0.1
    # ...and filtering yields a clearly better silicon ranking.
    assert filtered_quality > raw_quality
    assert filtered_quality > 0.65
