"""Future work (paper §VI): recovering CPU bins by clustering.

"In cases where there is no clear bin labels ... we plan to create our own
bins by clustering the performance data using unstructured learning
algorithms."  This bench runs a synthetic 18-unit Nexus 5 fleet through a
shortened ACCUBENCH campaign, clusters the (performance, energy) features,
and checks the recovered clusters align with the true voltage bins.
"""

from collections import Counter

import pytest

from repro.core.clustering import choose_k, kmeans, silhouette_score
from repro.core.config import AccubenchConfig
from repro.core.experiments import fixed_frequency, unconstrained
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.device.catalog import device_spec
from repro.device.fleet import synthetic_fleet

FLEET_SIZE = 18


def run_campaign():
    # Shorter phases: 18 units x 2 workloads is the expensive part.
    config = CampaignConfig(
        accubench=AccubenchConfig(
            warmup_s=120.0, workload_s=180.0, cooldown_target_c=38.0,
            cooldown_timeout_s=2700.0, iterations=2, dt=0.1,
            trace_decimation=10,
        ),
        use_thermabox=False,
    )
    runner = CampaignRunner(config)
    fleet = synthetic_fleet("Nexus 5", FLEET_SIZE, lot_name="cluster-lot")
    true_bins = {d.serial: d.soc.bin_index for d in fleet}
    perf = runner.run_fleet("Nexus 5", unconstrained(), devices=fleet)
    # Rebuild the fleet for the second workload: same silicon (same
    # serials/seed), fresh thermal state.
    fleet2 = synthetic_fleet("Nexus 5", FLEET_SIZE, lot_name="cluster-lot")
    energy = runner.run_fleet(
        "Nexus 5", fixed_frequency(device_spec("Nexus 5")), devices=fleet2
    )
    return true_bins, perf, energy


def test_ablation_bin_clustering(benchmark):
    true_bins, perf, energy = benchmark.pedantic(
        run_campaign, rounds=1, iterations=1
    )
    serials = perf.serials
    features = [
        [perf.by_serial(s).performance, energy.by_serial(s).energy_j]
        for s in serials
    ]
    observed_bins = sorted({true_bins[s] for s in serials})
    k = len(observed_bins)
    result = kmeans(features, k=k, seed=1)
    score = silhouette_score(features, result)

    # Cluster -> majority true bin; count units agreeing with their
    # cluster's majority label (purity).
    by_cluster = {}
    for serial, assignment in zip(serials, result.assignments):
        by_cluster.setdefault(assignment, []).append(true_bins[serial])
    agreeing = sum(
        Counter(members).most_common(1)[0][1] for members in by_cluster.values()
    )
    purity = agreeing / len(serials)

    auto_k, _ = choose_k(features, seed=1)

    print(
        f"\n§VI clustering: {len(serials)} synthetic Nexus 5 units, "
        f"{k} true bins present"
        f"\n  purity at true k: {purity:.0%}   silhouette {score:.2f}"
        f"\n  silhouette-chosen k: {auto_k}"
    )

    # Clusters must align strongly with manufacturing bins.
    assert purity >= 0.7
    assert score > 0.3
    # Energy separates bins even when performance alone would not: the
    # energy feature must vary substantially across the fleet.
    energies = [f[1] for f in features]
    assert max(energies) / min(energies) > 1.1
