"""Ablation: what the warmup phase buys (paper Section III).

"A problem with existing benchmarks is that they produce very different
results on the same CPU depending on whether the CPU was previously idle
or under use.  The warmup phase mitigates this."  Removing the warmup
should widen the gap between a cold-start first iteration and the warm
iterations that follow.
"""

import numpy as np

from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from benchmarks.conftest import bench_accubench_config

ITERATIONS = 4


def first_iteration_bias(warmup_s: float) -> float:
    """|first − steady| / steady over back-to-back iterations."""
    device = build_device(PAPER_FLEETS["Nexus 5"][2])
    device.connect_supply(MonsoonPowerMonitor(3.8))
    bench = Accubench(bench_accubench_config(warmup_s=warmup_s))
    scores = [
        bench.run_iteration(device, unconstrained()).iterations_completed
        for _ in range(ITERATIONS)
    ]
    steady = float(np.mean(scores[1:]))
    return abs(scores[0] - steady) / steady


def test_ablation_warmup_removes_cold_start_bias(benchmark):
    def compare():
        return {
            "with warmup (180 s)": first_iteration_bias(180.0),
            "without warmup (1 s)": first_iteration_bias(1.0),
        }

    biases = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\nAblation — first-iteration bias vs steady state:")
    for label, bias in biases.items():
        print(f"  {label:<22s} {bias:6.2%}")

    with_warmup = biases["with warmup (180 s)"]
    without = biases["without warmup (1 s)"]
    assert without > with_warmup, "warmup should reduce cold-start bias"
    assert with_warmup < 0.04, "paper-style warmup keeps bias within noise"
