"""Campaign throughput: single-device stepping rate and parallel speedup.

Unlike the figure/table benches this one measures the simulator itself:

* ``World.run_for`` steps per second on a loaded device (the hot path
  behind every experiment), compared against the stepping rate measured
  at the seed commit,
* wall-clock speedup of ``run_model(jobs=4)`` over the serial path —
  asserted only on machines with at least 4 cores, recorded on any
  multi-core machine, and skipped outright on single-CPU boxes (a pool
  there measures only pickling overhead), and
* end-to-end speedup of the exact ``expm`` thermal solver plus the sleep
  fast-forward over the sub-stepped Euler baseline on a cooldown-heavy
  ACCUBENCH iteration, interleaved A/B, with agreement checks on the
  cooldown duration and workload energy, and
* overhead of the telemetry plane (:mod:`repro.obs`) on a fleet
  campaign, interleaved A/B with observation on vs off — the enabled arm
  runs the full stack: metrics registry, progress bus absorbing every
  shard boundary, and a live HTTP scrape endpoint; the enabled run's
  metrics document lands in ``BENCH_metrics.json`` at the repository
  root.

The seed baselines below were measured on the reference runner with the
seed checkout's stepping runs interleaved against this checkout's, so
host-load drift cancels out of the comparison; on other machines the
absolute floor is meaningless — set ``REPRO_BENCH_SKIP_RATE_ASSERT=1``
to record rates without asserting against it.

Results land in ``BENCH_campaign.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.config import AccubenchConfig
from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.instruments.thermabox import Thermabox
from repro.obs import (
    MetricsRegistry,
    ProgressBus,
    TelemetryServer,
    use_registry,
    write_metrics,
)
from repro.sim.engine import World
from repro.thermal.ambient import ConstantAmbient

# Steps/sec at the growth seed on the reference runner (best-of-N with
# the same methodology as `_steps_per_sec` below).
SEED_STEPS_PER_SEC = {"Nexus 5": 23913.0, "Google Pixel": 22330.0}
MIN_SPEEDUP_VS_SEED = 1.3
MIN_PARALLEL_SPEEDUP = 2.5
PARALLEL_JOBS = 4
MIN_EXPM_SPEEDUP = 3.0

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_campaign.json")
METRICS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_metrics.json")
MAX_METRICS_OVERHEAD = 0.02

WARMUP_SIM_S = 5.0
TIMED_SIM_S = 60.0
DT = 0.1
REPEATS = 5


def _loaded_world(model: str) -> World:
    device = build_device(PAPER_FLEETS[model][0])
    device.connect_supply(MonsoonPowerMonitor(3.8))
    world = World(device, dt=DT, trace_decimation=10)
    device.acquire_wakelock()
    device.start_load()
    world.run_for(WARMUP_SIM_S)
    return world


def _steps_per_sec(model: str) -> float:
    best = 0.0
    steps = round(TIMED_SIM_S / DT)
    for _ in range(REPEATS):
        world = _loaded_world(model)
        start = time.perf_counter()
        world.run_for(TIMED_SIM_S)
        best = max(best, steps / (time.perf_counter() - start))
    return best


def _fleet_wall_time(jobs: int) -> float:
    # Both workloads of one model: 8 independent work items (4 units x 2
    # experiments), enough compute per item that pool overhead is noise.
    config = CampaignConfig(
        accubench=AccubenchConfig(iterations=3).scaled(0.5), jobs=jobs
    )
    runner = CampaignRunner(config)
    start = time.perf_counter()
    runner.run_model("Nexus 5")
    return time.perf_counter() - start


#: Sentinel for :func:`_merge_results`: remove the key from the document.
#: Distinct from ``None``, which records a real JSON ``null`` — "measured,
#: and the answer is 'not applicable'" — e.g. the parallel speedup on a
#: single-CPU machine.
RETRACT = object()


def _merge_results(update: dict, path: str = RESULTS_PATH) -> None:
    payload = {}
    if os.path.exists(path):
        with open(path) as fp:
            payload = json.load(fp)
    for key, value in update.items():
        if value is RETRACT:
            payload.pop(key, None)  # retract a stale measurement
        else:
            payload[key] = value
    with open(path, "w") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")


def _cooldown_heavy_iteration(solver: str):
    """One ACCUBENCH iteration dominated by the cooldown phase.

    The device starts case-soaked at 55 °C — the state back-to-back
    iterations leave it in, which is why the paper notes cooldown
    dominates experiment time — so the warmup is short and the sensor
    takes ~20 minutes of simulated time to report the target.
    """
    config = AccubenchConfig(
        warmup_s=60.0,
        workload_s=30.0,
        iterations=1,
        cooldown_target_c=32.0,
        thermal_solver=solver,
    )
    device = build_device(
        PAPER_FLEETS["Nexus 5"][0], thermal_solver=solver, initial_temp_c=55.0
    )
    device.connect_supply(MonsoonPowerMonitor(3.8))
    chamber = Thermabox(initial_temp_c=26.0)
    room = ConstantAmbient(23.0)
    start = time.perf_counter()
    result = Accubench(config).run_iteration(
        device, unconstrained(), room=room, chamber=chamber
    )
    return time.perf_counter() - start, result


def _campaign_wall_time(collect: bool):
    config = CampaignConfig(accubench=AccubenchConfig().scaled(0.5), jobs=1)
    registry = MetricsRegistry(enabled=collect)
    if not collect:
        runner = CampaignRunner(config)
        start = time.perf_counter()
        with use_registry(registry):
            runner.run_fleet("Nexus 5", unconstrained(), iterations=1)
        return time.perf_counter() - start, registry, None
    # The enabled arm carries the whole telemetry plane, not just the
    # registry: the progress bus absorbs every shard boundary and a live
    # HTTP endpoint sits listening for scrapes the entire timed window.
    bus = ProgressBus()
    runner = CampaignRunner(config, progress=bus)
    with use_registry(registry), TelemetryServer(registry=registry, bus=bus):
        start = time.perf_counter()
        runner.run_fleet("Nexus 5", unconstrained(), iterations=1)
        wall = time.perf_counter() - start
    return wall, registry, bus


@pytest.mark.parametrize("model", sorted(SEED_STEPS_PER_SEC))
def test_step_rate_vs_seed(model):
    rate = _steps_per_sec(model)
    seed_rate = SEED_STEPS_PER_SEC[model]
    speedup = rate / seed_rate
    _merge_results(
        {
            f"steps_per_sec[{model}]": round(rate, 1),
            f"steps_per_sec_seed[{model}]": seed_rate,
            f"speedup_vs_seed[{model}]": round(speedup, 3),
        }
    )
    print(f"\n{model}: {rate:,.0f} steps/s ({speedup:.2f}x over seed)")
    if os.environ.get("REPRO_BENCH_SKIP_RATE_ASSERT"):
        pytest.skip("rate floor assertion disabled by environment")
    assert speedup >= MIN_SPEEDUP_VS_SEED, (
        f"{model}: {rate:,.0f} steps/s is below "
        f"{MIN_SPEEDUP_VS_SEED}x the seed's {seed_rate:,.0f}"
    )


def test_parallel_fleet_speedup():
    cores = os.cpu_count() or 1
    if cores < 2:
        # A worker pool on a single CPU can only measure pickling overhead
        # (a 0.7x "speedup" was once recorded here); skip the A/B entirely
        # and retract any wall times a multi-core run may have left.
        _merge_results(
            {
                "cpu_count": cores,
                "fleet_parallel_speedup": None,
                "fleet_parallel_skipped_reason": "single_cpu",
                "fleet_serial_s": RETRACT,
                f"fleet_jobs{PARALLEL_JOBS}_s": RETRACT,
            }
        )
        pytest.skip("single-CPU machine; parallel A/B not meaningful")
    serial_s = _fleet_wall_time(jobs=1)
    parallel_s = _fleet_wall_time(jobs=PARALLEL_JOBS)
    speedup = serial_s / parallel_s
    _merge_results(
        {
            "fleet_serial_s": round(serial_s, 3),
            f"fleet_jobs{PARALLEL_JOBS}_s": round(parallel_s, 3),
            "fleet_parallel_speedup": round(speedup, 3),
            "fleet_parallel_skipped_reason": RETRACT,
            "cpu_count": cores,
        }
    )
    print(
        f"\nrun_model: serial {serial_s:.2f} s, "
        f"jobs={PARALLEL_JOBS} {parallel_s:.2f} s ({speedup:.2f}x, "
        f"{cores} cores)"
    )
    if cores < PARALLEL_JOBS:
        pytest.skip(f"only {cores} cores; speedup recorded, not asserted")
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"jobs={PARALLEL_JOBS} speedup {speedup:.2f}x below "
        f"{MIN_PARALLEL_SPEEDUP}x on a {cores}-core machine"
    )


def test_expm_fast_forward_speedup():
    # Interleaved A/B: alternate the two solvers so host-load drift
    # cancels, best-of per arm; each repeat is freshly seeded, so results
    # within an arm are bit-identical across repeats.
    best = {"euler": float("inf"), "expm": float("inf")}
    results = {}
    for _ in range(3):
        for solver in best:
            wall, result = _cooldown_heavy_iteration(solver)
            best[solver] = min(best[solver], wall)
            results[solver] = result
    speedup = best["euler"] / best["expm"]
    cooldown_delta_s = abs(
        results["euler"].cooldown_s - results["expm"].cooldown_s
    )
    energy_rel_err = abs(
        results["euler"].energy_j - results["expm"].energy_j
    ) / results["euler"].energy_j
    _merge_results(
        {
            "expm_cooldown_iter_euler_s": round(best["euler"], 3),
            "expm_cooldown_iter_expm_s": round(best["expm"], 3),
            "expm_fast_forward_speedup": round(speedup, 3),
            "expm_cooldown_delta_s": round(cooldown_delta_s, 2),
            "expm_energy_rel_err": round(energy_rel_err, 6),
            "expm_cooldown_sim_s": round(results["expm"].cooldown_s, 1),
        }
    )
    print(
        f"\ncooldown-heavy iteration: euler {best['euler']:.3f} s, "
        f"expm+fast-forward {best['expm']:.3f} s ({speedup:.2f}x); "
        f"cooldown {results['expm'].cooldown_s:.0f} s "
        f"(delta {cooldown_delta_s:.1f} s), "
        f"energy delta {energy_rel_err:.4%}"
    )
    # Physics agreement gates unconditionally — the solvers must tell the
    # same story regardless of the host.
    poll_s = AccubenchConfig().cooldown_poll_s
    assert cooldown_delta_s <= poll_s, (
        f"cooldown disagrees by {cooldown_delta_s:.1f} s (> one "
        f"{poll_s:.0f} s poll window)"
    )
    assert energy_rel_err <= 0.005, (
        f"workload energy disagrees by {energy_rel_err:.3%} (> 0.5%)"
    )
    if os.environ.get("REPRO_BENCH_SKIP_RATE_ASSERT"):
        pytest.skip("wall-clock floor assertion disabled by environment")
    assert speedup >= MIN_EXPM_SPEEDUP, (
        f"expm+fast-forward speedup {speedup:.2f}x below {MIN_EXPM_SPEEDUP}x"
    )


def test_metrics_collection_overhead():
    # Interleaved A/B: the same fleet campaign with the default (disabled,
    # null-object) registry vs the full telemetry plane (registry, bus,
    # live endpoint), best-of per arm. Observation only touches the
    # registry and bus at phase/shard boundaries, so the enabled arm
    # should be indistinguishable from the disabled one.
    best = {"off": float("inf"), "on": float("inf")}
    collected = observed_bus = None
    for _ in range(3):
        for arm in ("off", "on"):
            wall, registry, bus = _campaign_wall_time(collect=arm == "on")
            if wall < best[arm]:
                best[arm] = wall
                if arm == "on":
                    collected, observed_bus = registry, bus
    overhead = best["on"] / best["off"] - 1.0
    document_path = write_metrics(collected, METRICS_PATH)
    snapshot = collected.snapshot()
    _merge_results(
        {
            "metrics_off_s": round(best["off"], 3),
            "metrics_on_s": round(best["on"], 3),
            "metrics_overhead_pct": round(overhead * 100.0, 2),
            "metrics_engine_steps": snapshot["counters"]["engine.steps"],
            "metrics_spans": len(snapshot["spans"]),
            "metrics_bus_updates": observed_bus.updates,
        }
    )
    print(
        f"\nfleet campaign: observation off {best['off']:.3f} s, "
        f"on {best['on']:.3f} s ({overhead:+.2%}); "
        f"document at {document_path.name} with "
        f"{len(snapshot['spans'])} spans, "
        f"{observed_bus.updates} bus updates"
    )
    # The document must carry the headline counters regardless of host,
    # and the bus must actually have seen every shard.
    for key in ("engine.steps", "propagator.cache_hits", "tasks.completed"):
        assert key in snapshot["counters"], key
    assert observed_bus.updates > 0
    assert observed_bus.status()["state"] == "complete"
    if os.environ.get("REPRO_BENCH_SKIP_RATE_ASSERT"):
        pytest.skip("overhead floor assertion disabled by environment")
    assert overhead <= MAX_METRICS_OVERHEAD, (
        f"metrics collection costs {overhead:.2%} "
        f"(> {MAX_METRICS_OVERHEAD:.0%}) on the campaign benchmark"
    )
