"""Campaign throughput: single-device stepping rate and parallel speedup.

Unlike the figure/table benches this one measures the simulator itself:

* ``World.run_for`` steps per second on a loaded device (the hot path
  behind every experiment), compared against the stepping rate measured
  at the seed commit, and
* wall-clock speedup of ``run_model(jobs=4)`` over the serial path —
  asserted only on machines with at least 4 cores; recorded everywhere.

The seed baselines below were measured on the reference runner with the
seed checkout's stepping runs interleaved against this checkout's, so
host-load drift cancels out of the comparison; on other machines the
absolute floor is meaningless — set ``REPRO_BENCH_SKIP_RATE_ASSERT=1``
to record rates without asserting against it.

Results land in ``BENCH_campaign.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.config import AccubenchConfig
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.sim.engine import World

# Steps/sec at the growth seed on the reference runner (best-of-N with
# the same methodology as `_steps_per_sec` below).
SEED_STEPS_PER_SEC = {"Nexus 5": 23913.0, "Google Pixel": 22330.0}
MIN_SPEEDUP_VS_SEED = 1.3
MIN_PARALLEL_SPEEDUP = 2.5
PARALLEL_JOBS = 4

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_campaign.json")

WARMUP_SIM_S = 5.0
TIMED_SIM_S = 60.0
DT = 0.1
REPEATS = 5


def _loaded_world(model: str) -> World:
    device = build_device(PAPER_FLEETS[model][0])
    device.connect_supply(MonsoonPowerMonitor(3.8))
    world = World(device, dt=DT, trace_decimation=10)
    device.acquire_wakelock()
    device.start_load()
    world.run_for(WARMUP_SIM_S)
    return world


def _steps_per_sec(model: str) -> float:
    best = 0.0
    steps = round(TIMED_SIM_S / DT)
    for _ in range(REPEATS):
        world = _loaded_world(model)
        start = time.perf_counter()
        world.run_for(TIMED_SIM_S)
        best = max(best, steps / (time.perf_counter() - start))
    return best


def _fleet_wall_time(jobs: int) -> float:
    # Both workloads of one model: 8 independent work items (4 units x 2
    # experiments), enough compute per item that pool overhead is noise.
    config = CampaignConfig(
        accubench=AccubenchConfig(iterations=3).scaled(0.5), jobs=jobs
    )
    runner = CampaignRunner(config)
    start = time.perf_counter()
    runner.run_model("Nexus 5")
    return time.perf_counter() - start


def _merge_results(update: dict) -> None:
    payload = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as fp:
            payload = json.load(fp)
    payload.update(update)
    with open(RESULTS_PATH, "w") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")


@pytest.mark.parametrize("model", sorted(SEED_STEPS_PER_SEC))
def test_step_rate_vs_seed(model):
    rate = _steps_per_sec(model)
    seed_rate = SEED_STEPS_PER_SEC[model]
    speedup = rate / seed_rate
    _merge_results(
        {
            f"steps_per_sec[{model}]": round(rate, 1),
            f"steps_per_sec_seed[{model}]": seed_rate,
            f"speedup_vs_seed[{model}]": round(speedup, 3),
        }
    )
    print(f"\n{model}: {rate:,.0f} steps/s ({speedup:.2f}x over seed)")
    if os.environ.get("REPRO_BENCH_SKIP_RATE_ASSERT"):
        pytest.skip("rate floor assertion disabled by environment")
    assert speedup >= MIN_SPEEDUP_VS_SEED, (
        f"{model}: {rate:,.0f} steps/s is below "
        f"{MIN_SPEEDUP_VS_SEED}x the seed's {seed_rate:,.0f}"
    )


def test_parallel_fleet_speedup():
    serial_s = _fleet_wall_time(jobs=1)
    parallel_s = _fleet_wall_time(jobs=PARALLEL_JOBS)
    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    _merge_results(
        {
            "fleet_serial_s": round(serial_s, 3),
            f"fleet_jobs{PARALLEL_JOBS}_s": round(parallel_s, 3),
            "fleet_parallel_speedup": round(speedup, 3),
            "cpu_count": cores,
        }
    )
    print(
        f"\nrun_model: serial {serial_s:.2f} s, "
        f"jobs={PARALLEL_JOBS} {parallel_s:.2f} s ({speedup:.2f}x, "
        f"{cores} cores)"
    )
    if cores < PARALLEL_JOBS:
        pytest.skip(f"only {cores} cores; speedup recorded, not asserted")
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"jobs={PARALLEL_JOBS} speedup {speedup:.2f}x below "
        f"{MIN_PARALLEL_SPEEDUP}x on a {cores}-core machine"
    )
