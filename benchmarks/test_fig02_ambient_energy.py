"""Figure 2: energy to do fixed work vs ambient temperature.

Two different devices at max frequency, ambient swept: the paper sees
25–30% more energy at high ambient than at low, on both devices — the
leakage-temperature feedback loop made visible.
"""

from repro.core.protocol import Accubench
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.thermal.ambient import ConstantAmbient
from benchmarks.conftest import bench_accubench_config

AMBIENTS_C = (12.0, 22.0, 32.0, 42.0)
WORK_ITERATIONS = 400.0

#: The figure's "max frequency" on a device that must not thermally
#: throttle during the sweep: the highest Nexus 5 step that stays under
#: the trip point even at 42 °C ambient.
PINNED_FREQ_MHZ = 1574.0


def energy_at(unit_index: int, ambient_c: float) -> float:
    device = build_device(
        PAPER_FLEETS["Nexus 5"][unit_index], initial_temp_c=ambient_c
    )
    device.connect_supply(MonsoonPowerMonitor(3.8))
    bench = Accubench(bench_accubench_config())
    result = bench.run_fixed_work(
        device,
        WORK_ITERATIONS,
        room=ConstantAmbient(ambient_c),
        skip_conditioning=True,
        fixed_freq_mhz=PINNED_FREQ_MHZ,
    )
    return result.energy_j


def test_fig02_ambient_energy_scaling(benchmark):
    def sweep():
        return {
            serial_index: [energy_at(serial_index, t) for t in AMBIENTS_C]
            for serial_index in (1, 3)  # two different devices, as the figure
        }

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nFig 2: energy (J) for fixed work vs ambient temperature")
    print(f"  ambient: {AMBIENTS_C}")
    for index, energies in curves.items():
        serial = PAPER_FLEETS["Nexus 5"][index].serial
        growth = energies[-1] / energies[0]
        print(f"  {serial}: {[round(e) for e in energies]}  (x{growth:.2f})")

    for energies in curves.values():
        # Monotone growth with ambient on every device...
        assert all(b > a for a, b in zip(energies, energies[1:]))
        # ...by a Figure-2-sized factor across the sweep.
        growth = energies[-1] / energies[0]
        assert 1.08 <= growth <= 1.60
    # The leakier device scales worse with ambient (Figure 2 shows the
    # effect "across devices", with different magnitudes).
    assert curves[3][-1] / curves[3][0] > curves[1][-1] / curves[1][0]
