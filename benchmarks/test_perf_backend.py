"""Execution backend transport: zero-copy shared memory vs pickling.

Measures the tentpole claim of :mod:`repro.core.backends`: on a
trace-heavy fleet campaign the shared-memory backend must move trace
sample blocks through named segments the parent *attaches* instead of
pickled copies it must deserialize, without changing a single byte of
the results.  Three benches:

* end-to-end ``run_fleet`` A/B on a 32-unit traced fleet
  (``keep_traces=True``, ``trace_decimation=1``), interleaved
  process-pool vs shared-memory arms, best-of per arm.  Result parity —
  scalar fields *and* raw trace bytes — gates unconditionally; the
  wall-clock floor is asserted only on multi-core hosts (on one CPU the
  arms time-slice the same core and vectorized compute dominates, so
  the A/B measures scheduler noise) and is disabled by
  ``REPRO_BENCH_SKIP_RATE_ASSERT``.
* transport byte accounting at ``jobs=2``: the pool's result-side
  ``transport.pickle_bytes`` must be at least 10x the shared-memory
  backend's, and the segment bytes must equal the trace payload
  exactly.  Byte counts are deterministic — this gate is unconditional,
  host speed never excuses it.
* crowd memory flatness: 4x the users through the streamed crowd on the
  shared-memory backend at ``jobs=2`` must keep the parent's traced
  peak flat — eager payload release keeps the stream O(cohort), not
  O(users), even with a worker pool shipping results back.

Results land in ``BENCH_backend.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from dataclasses import replace

import pytest

from benchmarks.test_perf_campaign import RETRACT, _merge_results
from repro.core.config import AccubenchConfig
from repro.core.crowd_stream import run_streaming_crowd_study
from repro.core.experiments import unconstrained
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.core.serialize import device_to_dict
from repro.check.differential import default_crowd_differential_config
from repro.device.fleet import synthetic_fleet
from repro.obs import MetricsRegistry, use_registry

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_backend.json"
)

MODEL = "Nexus 5"
FLEET_N = 32
SCALE = 0.3
JOBS = 2
REPEATS = 3
ARMS = ("process-pool", "shared-memory")
MIN_BACKEND_SPEEDUP = 1.5
MIN_PICKLE_REDUCTION = 10.0
MEMORY_USERS = (1024, 4096)
MEMORY_COHORT = 256


def _config(backend: str) -> CampaignConfig:
    accubench = AccubenchConfig(
        thermal_solver="expm",
        iterations=1,
        batch=True,
        keep_traces=True,
        trace_decimation=1,
    ).scaled(SCALE)
    return CampaignConfig(accubench=accubench, root_seed=7, backend=backend)


def _fleet():
    return synthetic_fleet(MODEL, FLEET_N, root_seed=7)


def _run(backend: str):
    """One traced fleet campaign; returns (wall seconds, result)."""
    runner = CampaignRunner(_config(backend))
    fleet = _fleet()
    start = time.perf_counter()
    result = runner.run_fleet(
        MODEL, unconstrained(), devices=fleet, iterations=1, jobs=JOBS
    )
    return time.perf_counter() - start, result


def _digest(result):
    """Full parity surface: scalar fields plus raw trace bytes."""
    scalars = [
        json.dumps(device_to_dict(device), sort_keys=True)
        for device in result.devices
    ]
    traces = [
        (
            iteration.trace.samples().tobytes(),
            iteration.trace.phases,
            iteration.trace.open_phase,
        )
        for device in result.devices
        for iteration in device.iterations
        if iteration.trace is not None
    ]
    assert traces, "transport bench fixture must actually carry traces"
    return scalars, traces


def _trace_payload_bytes(result) -> int:
    return sum(
        iteration.trace.samples().nbytes
        for device in result.devices
        for iteration in device.iterations
        if iteration.trace is not None
    )


def test_backend_fleet_speedup():
    # Interleaved A/B so host-load drift cancels; best-of per arm.  Both
    # arms run the identical campaign, so wall-clock is comparable.
    best = {arm: float("inf") for arm in ARMS}
    results = {}
    for _ in range(REPEATS):
        for arm in ARMS:
            wall, result = _run(arm)
            best[arm] = min(best[arm], wall)
            results[arm] = result
    speedup = best["process-pool"] / best["shared-memory"]
    # Bit-identical results gate unconditionally — a fast transport that
    # corrupts a trace byte is a bug, not a win.
    assert _digest(results["process-pool"]) == _digest(
        results["shared-memory"]
    )
    cores = os.cpu_count() or 1
    trace_mb = _trace_payload_bytes(results["shared-memory"]) / 2**20
    print(
        f"\n{FLEET_N}-unit traced fleet ({trace_mb:.1f} MB of traces): "
        f"pool {best['process-pool']:.2f} s, "
        f"shm {best['shared-memory']:.2f} s ({speedup:.2f}x, {cores} cores)"
    )
    if cores < 2:
        # On one CPU the worker pool time-slices a single core and the
        # vectorized engine dominates the wall; the transport delta is
        # noise, so the ratio is recorded as unavailable rather than as
        # a misleading number (the byte-accounting bench below carries
        # the transport claim on such hosts).
        _merge_results(
            {
                "backend_fleet_n": FLEET_N,
                "backend_trace_mb": round(trace_mb, 2),
                "backend_pool_s": round(best["process-pool"], 3),
                "backend_shm_s": round(best["shared-memory"], 3),
                "backend_speedup": None,
                "backend_speedup_skipped_reason": "single_cpu",
                "backend_cpu_count": cores,
            },
            path=RESULTS_PATH,
        )
        pytest.skip("single-CPU machine; transport A/B floor not meaningful")
    _merge_results(
        {
            "backend_fleet_n": FLEET_N,
            "backend_trace_mb": round(trace_mb, 2),
            "backend_pool_s": round(best["process-pool"], 3),
            "backend_shm_s": round(best["shared-memory"], 3),
            "backend_speedup": round(speedup, 3),
            "backend_speedup_skipped_reason": RETRACT,
            "backend_cpu_count": cores,
        },
        path=RESULTS_PATH,
    )
    if os.environ.get("REPRO_BENCH_SKIP_RATE_ASSERT"):
        pytest.skip("rate floor assertion disabled by environment")
    assert speedup >= MIN_BACKEND_SPEEDUP, (
        f"shared-memory backend speedup {speedup:.2f}x below "
        f"{MIN_BACKEND_SPEEDUP}x at N={FLEET_N}, jobs={JOBS}"
    )


def test_shared_memory_reduces_pickled_result_bytes():
    # Metered pass: the counters are deterministic byte counts, so the
    # reduction floor gates unconditionally on every host.
    counters = {}
    payload_bytes = 0
    for arm in ARMS:
        runner = CampaignRunner(_config(arm))
        with use_registry(MetricsRegistry(enabled=True)) as registry:
            result = runner.run_fleet(
                MODEL,
                unconstrained(),
                devices=_fleet(),
                iterations=1,
                jobs=JOBS,
            )
        counters[arm] = registry.snapshot()["counters"]
        payload_bytes = _trace_payload_bytes(result)
    pool_bytes = counters["process-pool"]["transport.pickle_bytes"]
    shm_bytes = counters["shared-memory"].get("transport.pickle_bytes", 0)
    segment_bytes = counters["shared-memory"]["transport.shm_bytes"]
    reduction = pool_bytes / max(shm_bytes, 1)
    _merge_results(
        {
            "backend_pool_result_pickle_bytes": int(pool_bytes),
            "backend_shm_result_pickle_bytes": int(shm_bytes),
            "backend_shm_segment_bytes": int(segment_bytes),
            "backend_pickle_reduction": round(reduction, 1),
        },
        path=RESULTS_PATH,
    )
    print(
        f"\nresult transport at jobs={JOBS}: pool pickled "
        f"{pool_bytes / 2**20:.2f} MB, shm pickled "
        f"{shm_bytes / 2**10:.0f} KB + {segment_bytes / 2**20:.2f} MB "
        f"in segments ({reduction:.0f}x fewer pickled bytes)"
    )
    # Every trace sample block travelled through a segment, byte for
    # byte, and the pickled remainder shrank by at least the floor.
    assert segment_bytes == payload_bytes
    assert counters["shared-memory"].get("transport.traces_copied", 0) == 0
    assert reduction >= MIN_PICKLE_REDUCTION, (
        f"shared-memory transport pickled only {reduction:.1f}x fewer "
        f"result bytes than the pool (floor {MIN_PICKLE_REDUCTION}x)"
    )


def test_crowd_memory_flat_on_shared_memory_backend():
    # 4x the users at the same cohort width must not grow the parent's
    # peak: workers ship cohort results back over shared memory, the
    # stream folds them, and eager payload release drops each cohort
    # before the next lands.
    peaks = {}
    for users in MEMORY_USERS:
        config = replace(
            default_crowd_differential_config(user_count=users),
            backend="shared-memory",
        )
        tracemalloc.start()
        result = run_streaming_crowd_study(
            config, cohort_size=MEMORY_COHORT, jobs=JOBS
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.users_simulated == users
        peaks[users] = peak
    small, large = (peaks[users] for users in MEMORY_USERS)
    ratio = large / small
    _merge_results(
        {
            f"backend_crowd_mem_peak_mb[{users}]": round(
                peaks[users] / 2**20, 2
            )
            for users in MEMORY_USERS
        }
        | {"backend_crowd_mem_growth_4x_users": round(ratio, 3)},
        path=RESULTS_PATH,
    )
    print(
        f"\nshm-backend crowd peak: {small / 2**20:.1f} MB @ "
        f"{MEMORY_USERS[0]} users, {large / 2**20:.1f} MB @ "
        f"{MEMORY_USERS[1]} (x{ratio:.2f} for 4x users)"
    )
    assert ratio < 1.5, (
        f"parent peak memory grew {ratio:.2f}x for 4x users on the "
        "shared-memory backend — the stream is not O(cohort)"
    )
