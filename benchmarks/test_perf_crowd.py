"""Streaming crowd campaign throughput: cohort-batched vs serial §VI.

Measures the tentpole claim of :mod:`repro.core.crowd_stream`: folding
the §VI field study into fixed-size cohorts advanced through the batched
engine must beat the serial per-user reference by a wide margin while
keeping memory flat in the user count.  Four benches:

* interleaved A/B at N=256 — serial :func:`run_crowd_study` vs streamed
  :func:`run_streaming_crowd_study` on the identical configuration,
  best-of per arm.  Score agreement gates unconditionally (a fast
  stream that drifts is a bug, not a win); the speedup floor is
  asserted unless ``REPRO_BENCH_SKIP_RATE_ASSERT`` is set.
* memory scaling — tracemalloc peak at 2 048 vs 8 192 users with the
  same cohort width must stay flat: O(cohort + estimator), not O(users).
* the 10⁵-user headline — wall-clock, users/sec and peak RSS, recorded
  (shrink with ``REPRO_BENCH_CROWD_USERS`` on slow hosts).
* the 10⁶-user campaign — recorded non-gating, only when
  ``REPRO_BENCH_CROWD_FULL=1`` (tens of minutes on one core).

Results land in ``BENCH_crowd.json`` at the repository root.
"""

from __future__ import annotations

import os
import resource
import time
import tracemalloc

import numpy as np
import pytest

from benchmarks.test_perf_campaign import RETRACT, _merge_results
from repro.check.differential import default_crowd_differential_config
from repro.core.crowd import run_crowd_study
from repro.core.crowd_stream import run_streaming_crowd_study

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_crowd.json")

AB_USERS = 256
AB_REPEATS = 3
MIN_STREAM_SPEEDUP = 4.0
COHORT_SIZE = 256
MEMORY_USERS = (2048, 8192)
HEADLINE_USERS = int(os.environ.get("REPRO_BENCH_CROWD_USERS", "100000"))
FULL_USERS = 1_000_000


def _config(users: int):
    """The micro field protocol shared with the differential harness."""
    return default_crowd_differential_config(user_count=users)


def test_streamed_crowd_speedup():
    # Interleaved A/B so host-load drift cancels; best-of per arm.  Both
    # arms run the identical campaign configuration, so wall-clock per
    # arm is directly comparable.
    config = _config(AB_USERS)
    best = {"serial": float("inf"), "streamed": float("inf")}
    scores = {}
    for _ in range(AB_REPEATS):
        for arm in ("serial", "streamed"):
            start = time.perf_counter()
            if arm == "serial":
                scores[arm] = [s.score for s in run_crowd_study(config)]
            else:
                collected = []
                run_streaming_crowd_study(
                    config,
                    cohort_size=COHORT_SIZE,
                    on_submission=lambda s: collected.append(s.score),
                )
                scores[arm] = collected
            best[arm] = min(best[arm], time.perf_counter() - start)
    speedup = best["serial"] / best["streamed"]
    _merge_results(
        {
            "crowd_ab_users": AB_USERS,
            "crowd_ab_serial_s": round(best["serial"], 3),
            "crowd_ab_streamed_s": round(best["streamed"], 3),
            "crowd_ab_speedup": round(speedup, 3),
            "crowd_ab_users_per_sec": round(AB_USERS / best["streamed"], 1),
        },
        path=RESULTS_PATH,
    )
    print(
        f"\n{AB_USERS}-user crowd: serial {best['serial']:.2f} s, "
        f"streamed {best['streamed']:.2f} s ({speedup:.2f}x, "
        f"{AB_USERS / best['streamed']:,.0f} users/s)"
    )
    # Statistical fidelity gates unconditionally: same submissions, same
    # scores (only BLAS summation-order ulps tolerated).
    assert len(scores["serial"]) == len(scores["streamed"])
    assert np.allclose(scores["serial"], scores["streamed"], rtol=1e-9, atol=0.0)
    if os.environ.get("REPRO_BENCH_SKIP_RATE_ASSERT"):
        pytest.skip("rate floor assertion disabled by environment")
    assert speedup >= MIN_STREAM_SPEEDUP, (
        f"streamed crowd speedup {speedup:.2f}x below "
        f"{MIN_STREAM_SPEEDUP}x at N={AB_USERS}"
    )


def test_streamed_memory_is_o_cohort():
    # 4x the users at the same cohort width must not grow the peak: the
    # stream holds one cohort of worlds plus fixed estimator state.
    peaks = {}
    for users in MEMORY_USERS:
        tracemalloc.start()
        result = run_streaming_crowd_study(
            _config(users), cohort_size=COHORT_SIZE
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.users_simulated == users
        peaks[users] = peak
    small, large = (peaks[users] for users in MEMORY_USERS)
    ratio = large / small
    _merge_results(
        {
            f"crowd_mem_peak_mb[{users}]": round(peaks[users] / 2**20, 2)
            for users in MEMORY_USERS
        }
        | {"crowd_mem_growth_4x_users": round(ratio, 3)},
        path=RESULTS_PATH,
    )
    print(
        f"\npeak traced memory: {small / 2**20:.1f} MB @ {MEMORY_USERS[0]} "
        f"users, {large / 2**20:.1f} MB @ {MEMORY_USERS[1]} "
        f"(x{ratio:.2f} for 4x users)"
    )
    assert ratio < 1.5, (
        f"peak memory grew {ratio:.2f}x for 4x users — stream is not "
        "O(cohort)"
    )


def _record_scale_run(prefix: str, users: int) -> None:
    start = time.perf_counter()
    result = run_streaming_crowd_study(_config(users), cohort_size=COHORT_SIZE)
    wall = time.perf_counter() - start
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    _merge_results(
        {
            f"{prefix}_users": users,
            f"{prefix}_wall_s": round(wall, 1),
            f"{prefix}_users_per_sec": round(users / wall, 1),
            f"{prefix}_peak_rss_mb": round(rss_mb, 1),
            f"{prefix}_submissions": result.submission_count,
            f"{prefix}_dropped": sum(result.dropped.values()),
            f"{prefix}_filtered_kept": result.filtered_count,
            f"{prefix}_ranking_quality_filtered": result.ranking_quality_filtered,
        },
        path=RESULTS_PATH,
    )
    print(
        f"\n{users:,}-user campaign: {wall:.1f} s wall, "
        f"{users / wall:,.0f} users/s, peak RSS {rss_mb:.0f} MB, "
        f"{result.submission_count:,} submissions "
        f"({sum(result.dropped.values()):,} dropped)"
    )
    assert result.complete


def test_crowd_headline_scale():
    # Recorded, never rate-asserted: the 10^5-user headline.
    _record_scale_run("crowd_headline", HEADLINE_USERS)


def test_crowd_million_users():
    # The paper's "1M users ranked" endgame; tens of minutes on one
    # core, so opt-in and purely recorded.
    if not os.environ.get("REPRO_BENCH_CROWD_FULL"):
        _merge_results(
            {"crowd_full_skipped_reason": "set REPRO_BENCH_CROWD_FULL=1 to run"},
            path=RESULTS_PATH,
        )
        pytest.skip("10^6-user campaign disabled by default")
    _merge_results({"crowd_full_skipped_reason": RETRACT}, path=RESULTS_PATH)
    _record_scale_run("crowd_full", FULL_USERS)
