"""Figure 13: relative efficiency of the five SoC generations.

"While the SD-805 is definitely more performant than the SD-800, it comes
at the cost of decreased efficiency"; efficiency otherwise improves as the
process shrinks.
"""

from repro.core.efficiency import (
    efficiency_point,
    efficiency_series,
    relative_to_first,
    sd805_regression,
)
from repro.core.reporting import render_efficiency
from repro.soc.catalog import soc_by_name
from repro.device.catalog import device_spec


def test_fig13_relative_efficiency(study, benchmark):
    def build_series():
        points = []
        for model, (performance, _) in study.items():
            soc = soc_by_name(device_spec(model).soc_name)
            points.append(efficiency_point(performance, soc.name, soc.year))
        return efficiency_series(points)

    series = benchmark(build_series)
    relative = relative_to_first(series)

    print("\n" + render_efficiency(series))
    print("Relative to SD-800:", {k: round(v, 2) for k, v in relative.items()})

    # The headline anomaly: SD-805 measured less efficient than SD-800.
    assert sd805_regression(series)

    # The overall arc still bends up: the 14 nm parts beat every 28/20 nm
    # part, and the best SoC is a 14 nm one.
    by_soc = {p.soc: p.mean_iters_per_kj for p in series}
    assert by_soc["SD-820"] > by_soc["SD-800"]
    assert by_soc["SD-821"] > by_soc["SD-800"]
    assert max(by_soc, key=by_soc.get) in {"SD-820", "SD-821"}

    # SD-805 also performs more work in absolute terms (it IS faster).
    perf_805 = study["Nexus 6"][0]
    perf_800 = study["Nexus 5"][0]
    best_805 = max(d.performance for d in perf_805.devices)
    worst_800 = min(d.performance for d in perf_800.devices)
    assert best_805 > worst_800 * 0.9
