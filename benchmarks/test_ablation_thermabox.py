"""Ablation: naive benchmarking vs ACCUBENCH-in-THERMABOX.

The paper's motivation (Section I): "The score of a good CPU would be no
match to the score of a bad CPU if the bad CPU ran the benchmark at a
significantly lower ambient temperature."  A naive benchmark run — cold
device, no warmup, whatever room you're in — ranks silicon and room
temperature together; the full methodology recovers the silicon ranking.
"""

from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.instruments.thermabox import Thermabox, ThermaboxConfig
from repro.sim.engine import World
from repro.soc.perf import iterations_from_ops
from repro.thermal.ambient import ConstantAmbient
from benchmarks.conftest import bench_accubench_config

COOL_ROOM_C = 14.0
WARM_ROOM_C = 35.0
NAIVE_RUN_S = 300.0


def naive_score(bin_index: int, ambient_c: float) -> float:
    """What an uncontrolled one-shot benchmark reports: cold device, no
    warmup, no cooldown, whatever the room happens to be."""
    device = build_device(
        PAPER_FLEETS["Nexus 5"][bin_index], initial_temp_c=ambient_c
    )
    device.connect_supply(MonsoonPowerMonitor(3.8))
    world = World(device, room=ConstantAmbient(ambient_c), dt=0.1)
    device.acquire_wakelock()
    device.start_load()
    world.run_for(NAIVE_RUN_S)
    return iterations_from_ops(world.ops_total)


def accubench_score(bin_index: int, room_c: float) -> float:
    """The methodology's score: ≥2 normalized iterations in the chamber."""
    device = build_device(PAPER_FLEETS["Nexus 5"][bin_index], initial_temp_c=room_c)
    device.connect_supply(MonsoonPowerMonitor(3.8))
    bench = Accubench(bench_accubench_config())
    chamber = Thermabox(ThermaboxConfig(), initial_temp_c=26.0)
    room = ConstantAmbient(room_c)
    bench.run_iteration(device, unconstrained(), room=room, chamber=chamber)
    second = bench.run_iteration(device, unconstrained(), room=room, chamber=chamber)
    return second.iterations_completed


def test_ablation_thermabox_ranking(benchmark):
    def compare():
        return {
            # Naive: the GOOD chip benchmarked in a warm room, the BAD chip
            # in a cool one -- the paper's warning scenario.
            "naive bin-0 @ 35C room": naive_score(0, WARM_ROOM_C),
            "naive bin-3 @ 14C room": naive_score(3, COOL_ROOM_C),
            # Methodology: same rooms, but ACCUBENCH inside the THERMABOX.
            "accubench bin-0": accubench_score(0, WARM_ROOM_C),
            "accubench bin-3": accubench_score(3, COOL_ROOM_C),
        }

    scores = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\nAblation — naive benchmarking vs ACCUBENCH + THERMABOX:")
    for label, value in scores.items():
        print(f"  {label:<24s} {value:7.0f} iterations")

    # Naive runs invert the silicon ranking: the bad chip "wins".
    assert scores["naive bin-3 @ 14C room"] > scores["naive bin-0 @ 35C room"]
    # The methodology restores it, with a Figure-6-sized margin.
    ratio = scores["accubench bin-0"] / scores["accubench bin-3"]
    assert ratio > 1.08
