"""Cost of the runtime invariant checkers (:mod:`repro.check`).

The engine contract is *zero-cost when disabled*: ``run_for`` tests for
an observer once per call, and with none attached the pre-existing
inlined hot loop runs untouched.  This bench holds the claim to numbers,
interleaved A/B best-of per arm:

* **baseline** — a world whose observer API was never touched,
* **disabled** — a world that had an :class:`InvariantSuite` attached and
  detached again (the feature exercised, then switched off); must step
  within 1% of baseline,
* **enabled** — the full default suite watching every step; overhead is
  recorded (and loosely bounded) but not part of the disabled-cost gate.

Results land in ``BENCH_check.json`` at the repository root.  Set
``REPRO_BENCH_SKIP_RATE_ASSERT=1`` to record without asserting (shared
convention with the campaign bench for noisy hosts).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.check import InvariantSuite
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.sim.engine import World

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_check.json")

#: The gate: a disabled-checkers world may cost at most this much over a
#: never-observed one.
MAX_DISABLED_OVERHEAD = 0.01

#: Sanity ceiling for the enabled suite (five pure-python checks per
#: step); it exists to catch accidental quadratic work, not to tune.
MAX_ENABLED_OVERHEAD = 2.0

WARMUP_SIM_S = 5.0
TIMED_SIM_S = 60.0
DT = 0.1
REPEATS = 5


def _loaded_world(arm: str) -> World:
    device = build_device(PAPER_FLEETS["Nexus 5"][0])
    device.connect_supply(MonsoonPowerMonitor(3.8))
    world = World(device, dt=DT, trace_decimation=10)
    if arm == "disabled":
        world.attach_observer(InvariantSuite())
        world.detach_observer()
    elif arm == "enabled":
        world.attach_observer(InvariantSuite())
    device.acquire_wakelock()
    device.start_load()
    world.run_for(WARMUP_SIM_S)
    return world


def _steps_per_sec(arm: str) -> float:
    steps = round(TIMED_SIM_S / DT)
    world = _loaded_world(arm)
    start = time.perf_counter()
    world.run_for(TIMED_SIM_S)
    return steps / (time.perf_counter() - start)


def test_invariant_checker_overhead():
    arms = ("baseline", "disabled", "enabled")
    best = {arm: 0.0 for arm in arms}
    for _ in range(REPEATS):
        for arm in arms:  # interleaved so host drift cancels
            best[arm] = max(best[arm], _steps_per_sec(arm))

    disabled_overhead = best["baseline"] / best["disabled"] - 1.0
    enabled_overhead = best["baseline"] / best["enabled"] - 1.0

    with open(RESULTS_PATH, "w") as fp:
        json.dump(
            {
                "baseline_steps_per_sec": round(best["baseline"]),
                "disabled_steps_per_sec": round(best["disabled"]),
                "enabled_steps_per_sec": round(best["enabled"]),
                "disabled_overhead_pct": round(disabled_overhead * 100.0, 2),
                "enabled_overhead_pct": round(enabled_overhead * 100.0, 2),
            },
            fp,
            indent=2,
            sort_keys=True,
        )
        fp.write("\n")

    print(
        f"\ninvariant checkers: baseline {best['baseline']:,.0f} steps/s, "
        f"disabled {best['disabled']:,.0f} ({disabled_overhead:+.2%}), "
        f"enabled {best['enabled']:,.0f} ({enabled_overhead:+.2%})"
    )

    if os.environ.get("REPRO_BENCH_SKIP_RATE_ASSERT"):
        pytest.skip("overhead floor assertion disabled by environment")
    assert disabled_overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled checkers cost {disabled_overhead:.2%} "
        f"(> {MAX_DISABLED_OVERHEAD:.0%}) over the never-observed loop"
    )
    assert enabled_overhead <= MAX_ENABLED_OVERHEAD, (
        f"enabled checkers cost {enabled_overhead:.2%} "
        f"(> {MAX_ENABLED_OVERHEAD:.0%}); check for accidental per-step "
        f"quadratic work"
    )
