"""Section IV-C extension: non-thermal throttling as the battery ages.

The paper flags the LG G5's input-voltage throttling as "reminiscent of
recent reports of old iPhones being throttled": battery supply voltage
falls with age, so a voltage-triggered cap silently slows the phone over
its lifetime.  This bench quantifies that trajectory on the G5 model.
"""

from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.device.aging import BatteryAge, aged_battery, throttle_onset_soc
from repro.device.catalog import lg_g5
from repro.device.fleet import PAPER_FLEETS, build_device
from benchmarks.conftest import bench_accubench_config

CHARGE = 0.97  # a phone fresh off the charger


def performance_at_age(cycles: float) -> float:
    device = build_device(PAPER_FLEETS["LG G5"][2])
    device.connect_supply(
        aged_battery(
            device.spec.battery, BatteryAge(cycles=cycles), state_of_charge=CHARGE
        )
    )
    bench = Accubench(bench_accubench_config(iterations=1))
    return bench.run_iteration(device, unconstrained()).iterations_completed


def test_ablation_battery_aging(benchmark):
    def run():
        return {cycles: performance_at_age(cycles) for cycles in (0.0, 300.0, 700.0)}

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    spec = lg_g5()
    threshold = spec.voltage_throttle.threshold_v
    onsets = {
        cycles: throttle_onset_soc(
            spec.battery, BatteryAge(cycles=cycles),
            threshold_v=threshold, load_w=4.0,
        )
        for cycles in (0.0, 300.0, 700.0)
    }

    print("\n§IV-C battery aging on the LG G5 (97% charge):")
    for cycles in (0.0, 300.0, 700.0):
        print(
            f"  {cycles:4.0f} cycles: {scores[cycles]:7.0f} iterations, "
            f"voltage-throttle engages below {onsets[cycles]:.0%} charge"
        )

    # The throttle onset climbs toward full charge as the pack wears —
    # an older phone spends more of every day capped.
    assert onsets[0.0] < onsets[300.0] < onsets[700.0]
    # Fresh off the charger the new pack is above the trigger, the old below:
    # measurable slowdown from battery age alone, no silicon change.
    slowdown = (scores[0.0] - scores[700.0]) / scores[0.0]
    assert slowdown > 0.10
    # And it is non-thermal: the mid-life pack still clears the threshold
    # at this charge, so its score matches the new pack's.
    mid_gap = abs(scores[300.0] - scores[0.0]) / scores[0.0]
    assert mid_gap < 0.08
