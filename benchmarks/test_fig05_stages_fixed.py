"""Figure 5: thermal behaviour during a FIXED-FREQUENCY workload (Nexus 5).

"Due to a low frequency, the device never heats up to throttling levels" —
the trace stays far below the mitigation thresholds for the whole
protocol's workload phase.
"""

from repro.core.experiments import fixed_frequency
from repro.core.protocol import Accubench
from repro.device.catalog import device_spec
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from benchmarks.conftest import bench_accubench_config


def run_protocol():
    device = build_device(PAPER_FLEETS["Nexus 5"][2])
    device.connect_supply(MonsoonPowerMonitor(3.8))
    bench = Accubench(bench_accubench_config(keep_traces=True))
    return bench.run_iteration(device, fixed_frequency(device_spec("Nexus 5")))


def test_fig05_stages_fixed_frequency(benchmark):
    result = benchmark.pedantic(run_protocol, rounds=1, iterations=1)
    trace = result.trace
    workload = trace.phase("workload")
    temps = trace.window(workload.start_s, workload.end_s, "cpu_temp")
    freqs = trace.window(workload.start_s, workload.end_s, "freq")

    print(
        f"\nFig 5: FIXED-FREQUENCY at 960 MHz (Nexus 5 bin-2):"
        f"\n  workload die temp {temps.min():.1f}..{temps.max():.1f} C "
        f"(throttle trip {device_spec('Nexus 5').throttle.throttle_temp_c} C)"
        f"\n  frequency held at {freqs.min():.0f}..{freqs.max():.0f} MHz"
        f"\n  throttled time: {result.time_throttled_s:.0f} s"
    )

    trip = device_spec("Nexus 5").throttle.throttle_temp_c
    assert temps.max() < trip - 10.0, "fixed frequency must stay far from the trip"
    assert result.time_throttled_s == 0.0
    assert freqs.min() == freqs.max() == 960.0
    # The workload phase still does real work.
    assert result.iterations_completed > 0
