"""Figure 12: frequency/temperature distributions on two Nexus 5 bins.

Bin-1 outperformed bin-3 by ~11%, and the mean frequency was also ~11%
higher — performance differences are frequency differences.
"""

from repro.core.distributions import compare_pair, summarize_workload
from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from benchmarks.conftest import bench_accubench_config


def run_bin(index: int):
    device = build_device(PAPER_FLEETS["Nexus 5"][index])
    device.connect_supply(MonsoonPowerMonitor(3.8))
    bench = Accubench(bench_accubench_config(keep_traces=True))
    result = bench.run_iteration(device, unconstrained())
    return result, summarize_workload(result.trace, device.serial)


def test_fig12_nexus5_distributions(benchmark):
    def run_pair():
        return run_bin(1), run_bin(3)

    (res1, sum1), (res3, sum3) = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    comparison = compare_pair(sum1, sum3)
    perf_delta = (
        res1.iterations_completed - res3.iterations_completed
    ) / res3.iterations_completed

    print(
        f"\nFig 12: Nexus 5 bin-1 vs bin-3"
        f"\n  perf delta      {perf_delta:6.1%} (paper ~11%)"
        f"\n  mean freq delta {comparison.mean_freq_delta:6.1%} "
        f"({sum1.mean_freq_mhz:.0f} vs {sum3.mean_freq_mhz:.0f} MHz)"
        f"\n  freq p10..p90   bin-1 {sum1.freq_p10_mhz:.0f}..{sum1.freq_p90_mhz:.0f}, "
        f"bin-3 {sum3.freq_p10_mhz:.0f}..{sum3.freq_p90_mhz:.0f}"
    )

    assert comparison.faster.serial == "bin-1"
    assert 0.04 <= perf_delta <= 0.18
    # "the mean frequency also 11% higher": deltas agree.
    assert abs(comparison.mean_freq_delta - perf_delta) < 0.03
    # Bin-3 spends its workload lower in the frequency ladder.
    assert sum3.freq_p10_mhz < sum1.freq_p10_mhz
