"""Shared benchmark fixtures: the full-length paper campaign, run once.

The benchmark suite regenerates every table and figure of the paper at
full protocol length (3-minute warmup, 5-minute workload, sensor-polled
cooldown).  The heavy fleet campaign runs once per pytest session and is
shared by the Table II / Figures 6–9 / Figure 13 benches; figure-specific
experiments run inside their own bench.

Iterations per unit default to 3 (the paper ran ≥5); set
``REPRO_BENCH_ITERATIONS`` to override.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.core.config import AccubenchConfig
from repro.core.experiments import fixed_frequency, unconstrained
from repro.core.results import ExperimentResult
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.device.catalog import DEVICE_NAMES, device_spec

BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "3"))


def bench_accubench_config(**overrides) -> AccubenchConfig:
    """Full-length paper protocol parameters for benches."""
    params = dict(
        warmup_s=180.0,
        workload_s=300.0,
        cooldown_target_c=38.0,
        cooldown_poll_s=5.0,
        cooldown_timeout_s=2700.0,
        iterations=BENCH_ITERATIONS,
        dt=0.1,
        trace_decimation=10,
    )
    params.update(overrides)
    return AccubenchConfig(**params)


def bench_campaign(**overrides) -> CampaignConfig:
    """Campaign config used across benches (THERMABOX engaged)."""
    params = dict(accubench=bench_accubench_config(), use_thermabox=True)
    params.update(overrides)
    return CampaignConfig(**params)


@pytest.fixture(scope="session")
def runner() -> CampaignRunner:
    """Session-wide campaign runner at paper scale."""
    return CampaignRunner(bench_campaign())


@pytest.fixture(scope="session")
def study(runner) -> Dict[str, Tuple[ExperimentResult, ExperimentResult]]:
    """The whole Table II study: every model, both workloads.

    Shared by the summary/per-SoC/efficiency benches so the fleet campaign
    only runs once per session.
    """
    results = {}
    for model in DEVICE_NAMES:
        performance = runner.run_fleet(model, unconstrained())
        energy = runner.run_fleet(model, fixed_frequency(device_spec(model)))
        results[model] = (performance, energy)
    return results
