"""Figures 8a/8b: process variation in the SD-820 (LG G5).

Low performance variation (~4%) but clear energy variation (~10%) across
the five units — 14 nm FinFET tamed the spread but did not erase it.
"""

from repro.core.paper_targets import TABLE2_TARGETS, in_band
from repro.core.reporting import render_experiment


def test_fig08_sd820_variation(study, benchmark):
    performance, energy = study["LG G5"]

    def analyze():
        return performance.performance_variation, energy.energy_variation

    perf_var, energy_var = benchmark(analyze)

    print("\n" + render_experiment(performance, "performance"))
    print(render_experiment(energy, "energy"))
    print(
        f"Fig 8: perf variation {perf_var:.1%} (paper 4%), "
        f"energy variation {energy_var:.1%} (paper 10%)"
    )

    target = TABLE2_TARGETS["LG G5"]
    assert in_band(perf_var, target.performance_band)
    assert in_band(energy_var, target.energy_band)
    # Energy spreads more than performance on this generation (the
    # figure's defining feature).
    assert energy_var > perf_var
    # Five units, per the study.
    assert len(performance.devices) == 5
