"""Figures 9a/9b: process variation in the SD-821 (Google Pixel).

"Very similar behavior to the SD-820": ~5% performance and ~9% energy
variation across three units.
"""

from repro.core.paper_targets import TABLE2_TARGETS, in_band
from repro.core.reporting import render_experiment


def test_fig09_sd821_variation(study, benchmark):
    performance, energy = study["Google Pixel"]

    def analyze():
        return performance.performance_variation, energy.energy_variation

    perf_var, energy_var = benchmark(analyze)

    print("\n" + render_experiment(performance, "performance"))
    print(render_experiment(energy, "energy"))
    print(
        f"Fig 9: perf variation {perf_var:.1%} (paper 5%), "
        f"energy variation {energy_var:.1%} (paper 9%)"
    )

    target = TABLE2_TARGETS["Google Pixel"]
    assert in_band(perf_var, target.performance_band)
    assert in_band(energy_var, target.energy_band)
    # The units the paper names in Figure 11 keep their ordering here.
    assert performance.by_serial("device-488").performance > performance.by_serial(
        "device-653"
    ).performance

    # Like the SD-820: energy spreads more than performance.
    assert energy_var > perf_var
