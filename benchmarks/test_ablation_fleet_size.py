"""Section VII: the study's variations are lower bounds.

Builds a 16-unit synthetic Nexus 5 population, measures every unit's
UNCONSTRAINED performance, then subsamples fleets of the paper's sizes to
quantify how much a 3–5 unit study understates the population spread —
the paper's "minimum lower-bound" claim, with numbers attached.
"""

from repro.core.config import AccubenchConfig
from repro.core.experiments import unconstrained
from repro.core.lower_bound import fleet_size_curve, undersampling_factor
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.device.fleet import synthetic_fleet

POPULATION = 16


def run_population():
    config = CampaignConfig(
        accubench=AccubenchConfig(
            warmup_s=120.0, workload_s=180.0, cooldown_target_c=38.0,
            cooldown_timeout_s=2700.0, iterations=2, dt=0.15,
            trace_decimation=10,
        ),
        use_thermabox=False,
    )
    runner = CampaignRunner(config)
    fleet = synthetic_fleet("Nexus 5", POPULATION, lot_name="population")
    result = runner.run_fleet("Nexus 5", unconstrained(), devices=fleet)
    return [device.performance for device in result.devices]


def test_ablation_fleet_size(benchmark):
    performances = benchmark.pedantic(run_population, rounds=1, iterations=1)
    curve = fleet_size_curve(performances, sizes=[2, 3, 4, 8, POPULATION])
    factor_paper_scale = undersampling_factor(performances, 4)

    print(f"\n§VII lower bound: {POPULATION}-unit Nexus 5 population")
    print("  expected observed variation by study size:")
    for size, variation in curve.items():
        print(f"    n={size:<3d} {variation:6.1%}")
    print(
        f"  a 4-unit study (the paper's Nexus 5 fleet size) understates the "
        f"population by x{factor_paper_scale:.2f}"
    )

    # The §VII claim, quantified: expected spread grows with study size...
    values = [curve[n] for n in (2, 3, 4, 8, POPULATION)]
    assert values == sorted(values)
    # ...so small studies report strict lower bounds.
    assert curve[POPULATION] > curve[4] > curve[2]
    assert factor_paper_scale > 1.05
