"""Ablation: why ACCUBENCH uses a fully CPU-bound workload.

The paper's π task was chosen so performance tracks frequency exactly
(Section IV-B reads performance deltas off mean-frequency deltas).  A
memory-bound workload would blunt the methodology twice over: stalls make
retire rate insensitive to the clock, and idle pipelines burn less power,
so the thermal differences between bins barely express themselves.
"""

from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from benchmarks.conftest import bench_accubench_config


def fleet_spread(memory_boundedness: float) -> float:
    """Nexus 5 bin-0 vs bin-3 performance spread under a given workload."""
    bench = Accubench(bench_accubench_config(iterations=1))
    scores = {}
    for index in (0, 3):
        device = build_device(PAPER_FLEETS["Nexus 5"][index])
        device.connect_supply(MonsoonPowerMonitor(3.8))
        # run_iteration drives start_load(); re-apply the workload profile
        # by configuring the SoC directly before the run.
        original_start = device.start_load

        def start_with_profile(utilization=1.0, _orig=original_start, _beta=memory_boundedness):
            _orig(utilization=utilization, memory_boundedness=_beta)

        device.start_load = start_with_profile  # type: ignore[method-assign]
        result = bench.run_iteration(device, unconstrained())
        scores[index] = result.iterations_completed
    return (scores[0] - scores[3]) / scores[3]


def test_ablation_workload_boundedness(benchmark):
    def sweep():
        return {beta: fleet_spread(beta) for beta in (0.0, 0.3, 0.6)}

    spreads = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation — workload memory-boundedness vs observed variation:")
    for beta, spread in spreads.items():
        print(f"  β = {beta:.1f}: bin-0 over bin-3 by {spread:6.1%}")

    # The CPU-bound workload exposes the full Figure 6 spread...
    assert spreads[0.0] > 0.10
    # ...and the visible variation shrinks monotonically as the workload
    # becomes memory-bound.
    assert spreads[0.0] > spreads[0.3] > spreads[0.6]
    assert spreads[0.6] < 0.6 * spreads[0.0]
