"""Figures 7a/7b: process variation in the SD-810 (Nexus 6P).

Device-363 exhibited ~10% lower performance and ~12% more energy than
device-793, with no extractable bins (RBCPR adaptive voltage; every unit
reports "speed-bin 0").
"""

from repro.core.paper_targets import TABLE2_TARGETS, in_band
from repro.core.reporting import render_experiment


def test_fig07_sd810_variation(study, benchmark):
    performance, energy = study["Nexus 6P"]

    def analyze():
        return performance.performance_variation, energy.energy_variation

    perf_var, energy_var = benchmark(analyze)

    print("\n" + render_experiment(performance, "performance"))
    print(render_experiment(energy, "energy"))
    print(
        f"Fig 7: perf variation {perf_var:.1%} (paper 10%), "
        f"energy variation {energy_var:.1%} (paper 12%)"
    )

    target = TABLE2_TARGETS["Nexus 6P"]
    assert in_band(perf_var, target.performance_band)
    assert in_band(energy_var, target.energy_band)
    # The paper's named units keep their roles.
    assert performance.best_serial == "device-793"
    assert performance.worst_serial == "device-363"
    assert energy.most_efficient_serial == "device-793"
    worst_energy = max(energy.energies_j(), key=energy.energies_j().get)
    assert worst_energy == "device-363"
