"""Batched fleet engine throughput: lock-step vectorization vs serial.

Measures the tentpole claim of the batched engine: advancing N same-model
units as one ``(N, nodes)`` matrix through a shared propagator must beat
N independent per-unit worlds by a wide margin, *without* changing the
physics.  Two benches:

* end-to-end ``run_fleet`` on a 32-unit synthetic Nexus 5 fleet,
  interleaved A/B (``batch=True`` vs ``batch=False``), best-of per arm;
  unit-steps per second come from the ``engine.steps`` counter over the
  measured wall time, so both arms are scored on the same work unit.
  The speedup floor is asserted unless ``REPRO_BENCH_SKIP_RATE_ASSERT``
  is set; per-unit agreement against :data:`~repro.check.BATCH_SPEC`
  gates unconditionally — a fast engine that drifts is a bug, not a win.
* batch-size scaling at N ∈ {1, 8, 32, 128}: batched vs serial rate at
  each fleet size, recorded (never asserted) to document where the
  vectorization pays for its per-step fixed cost.
* mixed-fleet scaling at N ∈ {8, 32, 128} over two interleaved models:
  the cohort facade advances per-model blocks sequentially, so its
  speedup is bounded by the largest cohort — recorded per size, with a
  lower env-gated floor (≥3x at N=32) than the homogeneous bench and the
  same unconditional :data:`~repro.check.BATCH_SPEC` parity gate.  Two
  models keep every cohort on the governor replay cache (parts with
  per-step RBCPR voltage adjust rebuild the governor block each step,
  see ``repro.sim.batch``); a longer workload than the homogeneous
  sweep amortizes the per-cohort world setup inside the measured wall.

Results land in ``BENCH_batch.json`` at the repository root.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.test_perf_campaign import _merge_results
from repro.check.differential import BATCH_SPEC
from repro.core.config import AccubenchConfig
from repro.core.experiments import unconstrained
from repro.core.runner import CampaignConfig, CampaignRunner
from repro.device.fleet import synthetic_fleet
from repro.obs import MetricsRegistry, use_registry

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_batch.json")

MODEL = "Nexus 5"
FLEET_N = 32
MIN_BATCH_SPEEDUP = 5.0
REPEATS = 3
SCALE = 0.3
SCALING_FLEET_SIZES = (1, 8, 32, 128)
SCALING_SCALE = 0.15
SCALING_REPEATS = 2
MIXED_MODELS = ("Nexus 5", "Nexus 6")
MIXED_FLEET_SIZES = (8, 32, 128)
MIXED_SCALE = 0.4
MIXED_GATE_N = 32
MIN_MIXED_BATCH_SPEEDUP = 3.0


def _config(batch: bool) -> CampaignConfig:
    accubench = AccubenchConfig(
        thermal_solver="expm", iterations=1, batch=batch
    ).scaled(SCALE)
    return CampaignConfig(accubench=accubench, jobs=1)


def _fleet(count: int):
    return synthetic_fleet(
        MODEL, count, thermal_solver="expm", initial_temp_c=26.0
    )


def _mixed_fleet(count: int):
    """``count`` units cycling through :data:`MIXED_MODELS`, interleaved
    (distinct lots keep serials unique across models)."""
    per_model = (count + len(MIXED_MODELS) - 1) // len(MIXED_MODELS)
    pools = [
        synthetic_fleet(
            model,
            per_model,
            lot_name=f"mix-{index}",
            thermal_solver="expm",
            initial_temp_c=26.0,
        )
        for index, model in enumerate(MIXED_MODELS)
    ]
    devices = []
    for row in range(per_model):
        for pool in pools:
            devices.append(pool[row])
    return devices[:count]


def _fleet_rate(count: int, batch: bool, scale: float = SCALE, mixed: bool = False):
    """One fleet campaign; returns (unit-steps/sec, ExperimentResult)."""
    accubench = AccubenchConfig(
        thermal_solver="expm", iterations=1, batch=batch
    ).scaled(scale)
    runner = CampaignRunner(CampaignConfig(accubench=accubench, jobs=1))
    registry = MetricsRegistry(enabled=True)
    devices = _mixed_fleet(count) if mixed else _fleet(count)
    label = "+".join(MIXED_MODELS) if mixed else MODEL
    start = time.perf_counter()
    with use_registry(registry):
        result = runner.run_fleet(label, unconstrained(), devices=devices)
    wall = time.perf_counter() - start
    steps = registry.snapshot()["counters"]["engine.steps"]
    return steps / wall, result


def test_batched_fleet_speedup():
    # Interleaved A/B so host-load drift cancels; best-of per arm.  Both
    # arms retire the same engine.steps (draw-for-draw replay), so the
    # rate ratio is also the wall-clock ratio.
    best = {"serial": 0.0, "batched": 0.0}
    results = {}
    for _ in range(REPEATS):
        for arm, batch in (("serial", False), ("batched", True)):
            rate, result = _fleet_rate(FLEET_N, batch)
            best[arm] = max(best[arm], rate)
            results[arm] = result
    speedup = best["batched"] / best["serial"]
    divergences = BATCH_SPEC.compare_experiment(
        results["serial"], results["batched"]
    )
    _merge_results(
        {
            "batch_fleet_n": FLEET_N,
            "batch_serial_steps_per_sec": round(best["serial"], 1),
            "batch_batched_steps_per_sec": round(best["batched"], 1),
            "batch_speedup": round(speedup, 3),
            "batch_divergent_fields": len(divergences),
        },
        path=RESULTS_PATH,
    )
    print(
        f"\n{FLEET_N}-unit fleet: serial {best['serial']:,.0f} "
        f"unit-steps/s, batched {best['batched']:,.0f} ({speedup:.2f}x)"
    )
    # Physics agreement gates unconditionally, host speed never excuses it.
    assert divergences == [], "\n".join(str(d) for d in divergences)
    if os.environ.get("REPRO_BENCH_SKIP_RATE_ASSERT"):
        pytest.skip("rate floor assertion disabled by environment")
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"batched engine speedup {speedup:.2f}x below "
        f"{MIN_BATCH_SPEEDUP}x at N={FLEET_N}"
    )


def test_batch_size_scaling():
    # Recorded, never asserted: where does lock-step stepping pay off?
    # The batched arm's per-step fixed cost (mask bookkeeping, cohort
    # checks) is amortized over N rows, so N=1 is expected to lose.
    scaling = {}
    for count in SCALING_FLEET_SIZES:
        best = {"serial": 0.0, "batched": 0.0}
        for _ in range(SCALING_REPEATS):
            for arm, batch in (("serial", False), ("batched", True)):
                rate, _ = _fleet_rate(count, batch, scale=SCALING_SCALE)
                best[arm] = max(best[arm], rate)
        scaling[count] = {
            "serial": round(best["serial"], 1),
            "batched": round(best["batched"], 1),
            "speedup": round(best["batched"] / best["serial"], 3),
        }
        print(
            f"\nN={count}: serial {best['serial']:,.0f} unit-steps/s, "
            f"batched {best['batched']:,.0f} "
            f"({scaling[count]['speedup']:.2f}x)"
        )
    _merge_results(
        {
            f"batch_scaling[{count}]": entry["speedup"]
            for count, entry in scaling.items()
        }
        | {
            f"batch_scaling_batched_steps_per_sec[{count}]": entry["batched"]
            for count, entry in scaling.items()
        },
        path=RESULTS_PATH,
    )


def test_mixed_fleet_scaling():
    # Heterogeneous fleets run as per-model cohort blocks within one
    # world; the serial arm is the same per-unit loop either way, so the
    # sweep documents what cohort sequencing costs against the
    # homogeneous speedup.  Parity at the gate size is unconditional.
    scaling = {}
    gate_results = {}
    for count in MIXED_FLEET_SIZES:
        best = {"serial": 0.0, "batched": 0.0}
        for _ in range(SCALING_REPEATS):
            for arm, batch in (("serial", False), ("batched", True)):
                rate, result = _fleet_rate(
                    count, batch, scale=MIXED_SCALE, mixed=True
                )
                best[arm] = max(best[arm], rate)
                if count == MIXED_GATE_N:
                    gate_results[arm] = result
        scaling[count] = {
            "serial": round(best["serial"], 1),
            "batched": round(best["batched"], 1),
            "speedup": round(best["batched"] / best["serial"], 3),
        }
        print(
            f"\nmixed N={count}: serial {best['serial']:,.0f} "
            f"unit-steps/s, batched {best['batched']:,.0f} "
            f"({scaling[count]['speedup']:.2f}x)"
        )
    divergences = BATCH_SPEC.compare_experiment(
        gate_results["serial"], gate_results["batched"]
    )
    _merge_results(
        {
            f"batch_mixed_scaling[{count}]": entry["speedup"]
            for count, entry in scaling.items()
        }
        | {
            f"batch_mixed_batched_steps_per_sec[{count}]": entry["batched"]
            for count, entry in scaling.items()
        }
        | {
            "batch_mixed_models": "+".join(MIXED_MODELS),
            "batch_mixed_speedup": scaling[MIXED_GATE_N]["speedup"],
            "batch_mixed_divergent_fields": len(divergences),
        },
        path=RESULTS_PATH,
    )
    assert divergences == [], "\n".join(str(d) for d in divergences)
    if os.environ.get("REPRO_BENCH_SKIP_RATE_ASSERT"):
        pytest.skip("rate floor assertion disabled by environment")
    assert scaling[MIXED_GATE_N]["speedup"] >= MIN_MIXED_BATCH_SPEEDUP, (
        f"mixed-fleet batched speedup {scaling[MIXED_GATE_N]['speedup']:.2f}x "
        f"below {MIN_MIXED_BATCH_SPEEDUP}x at N={MIXED_GATE_N}"
    )
