"""Figure 10: the LG G5's anomalous input-voltage throttling.

Powering the G5 from a Monsoon set to the battery's *nominal* 3.85 V
trips an OS policy that caps CPU frequency; at the battery's *maximum*
4.4 V the device performs on par with battery power (≈20% faster).
"""

from repro.core.experiments import unconstrained
from repro.core.runner import CampaignRunner
from repro.device.battery import Battery
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.sim.engine import World
from repro.soc.perf import iterations_from_ops
from benchmarks.conftest import bench_accubench_config, bench_campaign


def run_monsoon(supply_voltage: float) -> float:
    runner = CampaignRunner(bench_campaign(use_thermabox=False))
    device = build_device(PAPER_FLEETS["LG G5"][2])
    return runner.run_device(
        device, unconstrained(), supply_voltage=supply_voltage
    ).performance


def run_battery() -> float:
    """Battery-powered performance reference (manual protocol drive).

    ACCUBENCH proper requires a Monsoon for energy accounting; the paper's
    battery runs only compared *performance*, so this drives the same
    warmup/cooldown/workload cycle directly.
    """
    config = bench_accubench_config()
    device = build_device(PAPER_FLEETS["LG G5"][2])
    device.connect_supply(Battery(device.spec.battery, state_of_charge=0.95))
    world = World(device, dt=config.dt, trace_decimation=config.trace_decimation)

    device.acquire_wakelock()
    device.start_load()
    world.run_for(config.warmup_s)
    device.stop_load()
    device.release_wakelock()
    world.run_until(
        lambda w: w.device.read_cpu_temp() <= config.cooldown_target_c,
        check_every_s=config.cooldown_poll_s,
        timeout_s=config.cooldown_timeout_s,
    )
    device.acquire_wakelock()
    device.start_load()
    ops_before = world.ops_total
    world.run_for(config.workload_s)
    return iterations_from_ops(world.ops_total - ops_before)


def test_fig10_g5_input_voltage(benchmark):
    def compare():
        return run_monsoon(3.85), run_monsoon(4.40), run_battery()

    nominal, maximum, battery = benchmark.pedantic(compare, rounds=1, iterations=1)
    deficit = (maximum - nominal) / maximum
    battery_gap = abs(maximum - battery) / battery

    print(
        f"\nFig 10: LG G5 performance"
        f"\n  Monsoon 3.85 V : {nominal:7.0f} iterations  (throttled)"
        f"\n  Monsoon 4.40 V : {maximum:7.0f} iterations"
        f"\n  battery        : {battery:7.0f} iterations"
        f"\n  3.85 V deficit {deficit:.1%} (paper ~20%); "
        f"4.4 V vs battery gap {battery_gap:.1%} (paper: on par)"
    )

    assert 0.12 <= deficit <= 0.30
    # At max voltage the Monsoon matches battery power, as the paper found.
    assert battery_gap < 0.05
