"""Figures 6a/6b: process variation in the SD-800 (Nexus 5).

UNCONSTRAINED: bin-0 fastest, ~14% over bin-3.  FIXED-FREQUENCY: bin-0
uses ~19% less energy than bin-3 — despite having the highest operating
voltage of all bins, the paper's counterintuitive headline.
"""

from repro.core.paper_targets import TABLE2_TARGETS, in_band
from repro.core.reporting import render_experiment


def test_fig06_sd800_variation(study, benchmark):
    performance, energy = study["Nexus 5"]

    def analyze():
        return (
            performance.performance_variation,
            energy.energy_variation,
            performance.best_serial,
            energy.most_efficient_serial,
        )

    perf_var, energy_var, fastest, leanest = benchmark(analyze)

    print("\n" + render_experiment(performance, "performance"))
    print(render_experiment(energy, "energy"))
    print(
        f"Fig 6: perf variation {perf_var:.1%} (paper 14%), "
        f"energy variation {energy_var:.1%} (paper 19%)"
    )

    target = TABLE2_TARGETS["Nexus 5"]
    assert in_band(perf_var, target.performance_band)
    assert in_band(energy_var, target.energy_band)
    # Bin-0 wins both, highest voltage notwithstanding.
    assert fastest == "bin-0"
    assert leanest == "bin-0"
    # Ordering is monotone in bin index on both axes.
    perfs = [performance.by_serial(f"bin-{i}").performance for i in range(4)]
    energies = [energy.by_serial(f"bin-{i}").energy_j for i in range(4)]
    assert perfs == sorted(perfs, reverse=True)
    assert energies == sorted(energies)
