"""Ablation: cooldown target temperature vs repeatability.

The cooldown phase "ensures that the workload phases of all experimental
iterations across devices are run under similar thermal states."  A target
close to ambient equalizes the chassis; a lax target lets each iteration
start from whatever state the previous one left behind, hurting RSD.
"""

from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.core.results import DeviceResult
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from benchmarks.conftest import bench_accubench_config

TARGETS_C = (38.0, 46.0, 58.0)
ITERATIONS = 4


def rsd_for_target(target_c: float) -> float:
    device = build_device(PAPER_FLEETS["Nexus 5"][2])
    device.connect_supply(MonsoonPowerMonitor(3.8))
    bench = Accubench(bench_accubench_config(cooldown_target_c=target_c))
    results = tuple(
        bench.run_iteration(device, unconstrained()) for _ in range(ITERATIONS)
    )
    summary = DeviceResult(
        model="Nexus 5", serial=device.serial,
        workload="UNCONSTRAINED", iterations=results,
    )
    return summary.performance_rsd


def test_ablation_cooldown_target(benchmark):
    def sweep():
        return {target: rsd_for_target(target) for target in TARGETS_C}

    rsds = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — cooldown target vs iteration RSD:")
    for target, rsd in rsds.items():
        print(f"  target {target:.0f} C -> RSD {rsd:6.2%}")

    # The paper-style tight target stays near the reported ~1.1% error.
    assert rsds[TARGETS_C[0]] < 0.03
    # A lax target is strictly worse than the tight one.
    assert rsds[TARGETS_C[-1]] > rsds[TARGETS_C[0]]
