"""Table II: summary of energy-performance variations across all 5 SoCs.

Reruns the paper's entire study — every fleet, both workloads, full-length
ACCUBENCH inside the THERMABOX — and checks each model's variation against
the acceptance bands of DESIGN.md §5.
"""

from repro.core.paper_targets import TABLE2_TARGETS, in_band
from repro.core.reporting import render_table2


def test_table2_summary(study, benchmark):
    def summarize():
        rows = {}
        for model, (performance, energy) in study.items():
            target = TABLE2_TARGETS[model]
            rows[model] = (
                target.soc,
                len(performance.devices),
                performance.performance_variation,
                energy.energy_variation,
            )
        return rows

    rows = benchmark(summarize)

    print("\n--- Table II (paper targets in parentheses) ---")
    print(render_table2(rows))
    for model, target in TABLE2_TARGETS.items():
        print(
            f"  {model:<14s} target perf {target.performance:.0%} "
            f"energy {target.energy:.0%}"
        )

    for model, (soc, count, perf, energy) in rows.items():
        target = TABLE2_TARGETS[model]
        assert count == target.device_count, model
        assert in_band(perf, target.performance_band), (
            f"{model} perf {perf:.1%} outside {target.performance_band}"
        )
        assert in_band(energy, target.energy_band), (
            f"{model} energy {energy:.1%} outside {target.energy_band}"
        )


def test_fixed_frequency_repeatability(study, benchmark):
    """Section IV / VII: the methodology's error bars.

    FIXED-FREQUENCY performance must be nearly identical across devices
    (paper: within 1.3% on the Nexus 5, RSD 2.63% on the Nexus 6P) and
    repeatable across iterations (average error ~1.1% RSD).
    """

    def collect():
        spreads = {}
        rsds = {}
        for model, (_, energy) in study.items():
            perfs = [d.performance for d in energy.devices]
            spreads[model] = (max(perfs) - min(perfs)) / min(perfs)
            rsds[model] = energy.mean_performance_rsd
        return spreads, rsds

    spreads, rsds = benchmark(collect)
    print("\nFIXED-FREQUENCY perf spread / per-unit RSD:")
    for model in spreads:
        print(f"  {model:<14s} {spreads[model]:6.2%}   {rsds[model]:6.2%}")
    for model, spread in spreads.items():
        assert spread < 0.04, f"{model} spread {spread:.2%}"
    for model, rsd in rsds.items():
        assert rsd < 0.03, f"{model} RSD {rsd:.2%}"
