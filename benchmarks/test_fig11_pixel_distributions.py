"""Figure 11: frequency/temperature distributions on two Google Pixels.

Device-488 outperformed device-653 by ~7%, with the mean-frequency delta
matching the performance delta.  Counterintuitively, the *faster* unit
spent more time at high temperature — time-at-temperature alone does not
predict throttling severity (paper Section IV-B).
"""

from repro.core.distributions import compare_pair, summarize_workload
from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from benchmarks.conftest import bench_accubench_config


def run_unit(index: int):
    device = build_device(PAPER_FLEETS["Google Pixel"][index])
    device.connect_supply(MonsoonPowerMonitor(3.85))
    bench = Accubench(bench_accubench_config(keep_traces=True))
    result = bench.run_iteration(device, unconstrained())
    summary = summarize_workload(result.trace, device.serial, hot_threshold_c=72.0)
    return result, summary


def test_fig11_pixel_distributions(benchmark):
    def run_pair():
        return run_unit(0), run_unit(2)  # device-488, device-653

    (res488, sum488), (res653, sum653) = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    comparison = compare_pair(sum488, sum653)
    perf_delta = (
        res488.iterations_completed - res653.iterations_completed
    ) / res653.iterations_completed

    print(
        f"\nFig 11: Pixel device-488 vs device-653"
        f"\n  perf delta        {perf_delta:6.1%} (paper ~7%)"
        f"\n  mean freq delta   {comparison.mean_freq_delta:6.1%} "
        f"({sum488.mean_freq_mhz:.0f} vs {sum653.mean_freq_mhz:.0f} MHz)"
        f"\n  time >=72C        488: {sum488.time_above_hot_s:5.0f} s, "
        f"653: {sum653.time_above_hot_s:5.0f} s"
        f"\n  max temp          488: {sum488.max_temp_c:.1f} C, "
        f"653: {sum653.max_temp_c:.1f} C"
    )

    # 488 is the faster unit, by a Figure-11-sized margin.
    assert comparison.faster.serial == "device-488"
    assert 0.02 <= perf_delta <= 0.15
    # Mean frequency delta tracks performance delta (the paper's evidence
    # that throttling, not background work, drives the difference).
    assert abs(comparison.mean_freq_delta - perf_delta) < 0.03


def test_fig11_temp_distribution_insufficiency(benchmark):
    """The subtler Section IV-B point: the slower unit is the one whose
    temperature does not drop as readily once throttled, so its
    temperature distribution alone would mislead."""

    def run_pair():
        return run_unit(0)[1], run_unit(2)[1]

    sum488, sum653 = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    # The slower, leakier 653 runs at lower frequency yet its mean
    # temperature is NOT correspondingly lower -- heat without speed.
    assert sum653.mean_freq_mhz < sum488.mean_freq_mhz
    assert sum653.mean_temp_c > sum488.mean_temp_c - 2.0
