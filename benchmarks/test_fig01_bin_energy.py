"""Figure 1: Nexus 5 energy/performance/temperature across CPU bins.

Fixed amount of work, unconstrained frequency: the figure's bin-4 chip
consumed ~20% more energy while taking ~18% longer than bin-0, and once
the 80 °C limit was hit one CPU core was shut down.
"""

import pytest

from repro.core.protocol import Accubench
from repro.device.fleet import FleetUnit, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.sim.engine import World
from benchmarks.conftest import bench_accubench_config

#: Enough work that a throttled chip shows its colours (~6 min on bin-0).
WORK_ITERATIONS = 800.0


def run_fixed_work(bin_index: int):
    # The figure's bin-4 chip died mid-study (Section IV-A1); we place it
    # conservatively toward its bin's slow edge.
    unit = FleetUnit(
        model="Nexus 5", serial=f"bin-{bin_index}",
        bin_index=bin_index, bin_fraction=0.3,
    )
    device = build_device(unit)
    device.connect_supply(MonsoonPowerMonitor(3.8))
    bench = Accubench(bench_accubench_config(keep_traces=True))
    return bench.run_fixed_work(device, WORK_ITERATIONS)


def test_fig01_bin_energy(benchmark):
    results = benchmark.pedantic(
        lambda: {b: run_fixed_work(b) for b in (0, 4)}, rounds=1, iterations=1
    )
    bin0, bin4 = results[0], results[4]

    time0, time4 = bin0.iterations_completed, bin4.iterations_completed
    energy_excess = bin4.energy_j / bin0.energy_j - 1.0
    time_excess = time4 / time0 - 1.0
    print(
        f"\nFig 1: bin-4 vs bin-0 at {WORK_ITERATIONS:.0f} iterations of work:"
        f"\n  energy {bin4.energy_j:.0f} J vs {bin0.energy_j:.0f} J "
        f"(+{energy_excess:.1%}; paper ~20%)"
        f"\n  time   {time4:.0f} s vs {time0:.0f} s (+{time_excess:.1%}; paper ~18%)"
        f"\n  peak die temp: bin-4 {bin4.max_cpu_temp_c:.1f} C, "
        f"bin-0 {bin0.max_cpu_temp_c:.1f} C"
    )

    # Shape: bin-4 pays both in energy and in time, by tens of percent.
    assert 0.08 <= energy_excess <= 0.40
    assert 0.05 <= time_excess <= 0.40
    # The thermal hard limit engages: the trace sees fewer than 4 cores.
    online = bin4.trace.column("online_cores")
    assert online.min() < 4, "expected the 80 C core-shutdown to engage"
    assert bin4.max_cpu_temp_c >= 79.0
