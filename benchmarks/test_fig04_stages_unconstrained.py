"""Figure 4: ACCUBENCH stages during an UNCONSTRAINED workload (Nexus 5).

The figure shows the die temperature trace across warmup → cooldown →
workload, with the CPU "beginning to throttle very quickly during the
warmup and workload phases" and the cooldown normalizing thermal state.
"""

import numpy as np

from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from benchmarks.conftest import bench_accubench_config


def run_protocol():
    device = build_device(PAPER_FLEETS["Nexus 5"][2])
    device.connect_supply(MonsoonPowerMonitor(3.8))
    bench = Accubench(bench_accubench_config(keep_traces=True))
    return bench.run_iteration(device, unconstrained())


def test_fig04_stages_unconstrained(benchmark):
    result = benchmark.pedantic(run_protocol, rounds=1, iterations=1)
    trace = result.trace

    lines = ["\nFig 4: ACCUBENCH phases (UNCONSTRAINED, Nexus 5 bin-2):"]
    for span in trace.phases:
        temps = trace.window(span.start_s, span.end_s, "cpu_temp")
        steps = trace.window(span.start_s, span.end_s, "throttle_steps")
        lines.append(
            f"  {span.name:<9s} {span.duration_s:6.0f} s   "
            f"die {temps.min():5.1f}..{temps.max():5.1f} C   "
            f"throttled {np.mean(steps > 0):5.1%} of samples"
        )
    print("\n".join(lines))

    warmup = trace.phase("warmup")
    cooldown = trace.phase("cooldown")
    workload = trace.phase("workload")

    # Warmup heats the die from near-ambient into throttling territory.
    warmup_temps = trace.window(warmup.start_s, warmup.end_s, "cpu_temp")
    assert warmup_temps.max() > 70.0
    assert (trace.window(warmup.start_s, warmup.end_s, "throttle_steps") > 0).any()

    # Cooldown ends at the target temperature.
    cooldown_temps = trace.window(cooldown.start_s, cooldown.end_s, "cpu_temp")
    assert cooldown_temps[-1] <= bench_accubench_config().cooldown_target_c + 1.0

    # Workload throttles again (the figure's second sawtooth region).
    workload_steps = trace.window(workload.start_s, workload.end_s, "throttle_steps")
    assert (workload_steps > 0).any()
    assert result.time_throttled_s > 30.0

    # Device suspends during cooldown (wakelock released).
    asleep = trace.window(cooldown.start_s, cooldown.end_s, "asleep")
    assert asleep.mean() > 0.95
