# Convenience targets; all assume the package is installed (see README).

.PHONY: test check check-update-golden bench bench-fast bench-batch bench-crowd bench-backend smoke-telemetry validate calibrate examples all

test:
	pytest tests/

# Correctness harness: differential pairings + runtime invariants +
# golden regression over the whole catalog (see docs/testing.md).
check:
	repro-bench check

check-update-golden:
	repro-bench check --update-golden

bench:
	pytest benchmarks/ --benchmark-only

# Simulator throughput + parallel speedup + metrics overhead (minutes,
# not hours); writes BENCH_campaign.json and BENCH_metrics.json.
bench-fast:
	pytest benchmarks/test_perf_campaign.py -q -s

# Batched fleet engine A/B: 32-unit speedup, batch-size scaling sweep,
# and the heterogeneous (2-model) mixed-fleet sweep at N in {8,32,128};
# writes BENCH_batch.json.
bench-batch:
	pytest benchmarks/test_perf_batch.py -q -s

# Streaming crowd campaign: streamed-vs-serial A/B at N=256, O(cohort)
# memory check, 10^5-user headline (REPRO_BENCH_CROWD_USERS to shrink,
# REPRO_BENCH_CROWD_FULL=1 for the 10^6 run); writes BENCH_crowd.json.
bench-crowd:
	pytest benchmarks/test_perf_crowd.py -q -s

# Execution backend transport A/B: shared-memory vs pickled results on
# a traced fleet, result-byte accounting, and crowd memory flatness on
# the shared-memory backend; writes BENCH_backend.json.
bench-backend:
	pytest benchmarks/test_perf_backend.py -q -s

# Live-telemetry smoke: a streamed crowd run scraped over HTTP mid-run;
# asserts advancing /status, parseable /metrics, round-tripping manifest.
smoke-telemetry:
	python scripts/telemetry_smoke.py

validate:
	repro-bench validate --scale 0.5 --iterations 2 --no-thermabox

calibrate:
	python scripts/calibrate.py

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex > /dev/null || exit 1; done

all: test check bench
