"""Reproduce the whole paper in one command.

Runs the complete ISPASS 2019 study — all five fleets, both workloads —
and prints every headline artifact: Table I, Table II, the per-SoC
normalized figures, and the Figure 13 efficiency series.  Results are
saved to a study directory so re-running re-reports without re-simulating.

    python examples/full_paper.py [outdir] [--paper-scale]

The default shortened protocol finishes in a couple of minutes; pass
``--paper-scale`` for the paper's full 3-minute warmup / 5-minute workload
and five iterations per unit.
"""

import sys
from pathlib import Path

from repro import AccubenchConfig, CampaignConfig, CampaignRunner
from repro.core.paper_targets import TABLE2_TARGETS
from repro.core.reporting import (
    render_efficiency,
    render_experiment,
    render_table1,
    render_table2,
)
from repro.core.study import Study, run_study
from repro.silicon import nexus5_table


def get_study(out_dir: Path, paper_scale: bool) -> Study:
    manifest = out_dir / "manifest.json"
    if manifest.exists():
        print(f"(loading cached study from {out_dir})\n")
        return Study.load(out_dir)
    if paper_scale:
        protocol = AccubenchConfig()
    else:
        protocol = AccubenchConfig(
            warmup_s=120.0, workload_s=180.0, iterations=2, dt=0.2
        )
    runner = CampaignRunner(CampaignConfig(accubench=protocol))
    print("Running the full study (5 fleets x 2 workloads)...\n")
    study = run_study(runner)
    study.save(out_dir)
    print(f"(saved to {out_dir})\n")
    return study


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    out_dir = Path(args[0]) if args else Path("study-output")
    study = get_study(out_dir, paper_scale="--paper-scale" in sys.argv)

    print("=" * 64)
    print("TABLE I — Nexus 5 voltage/frequency bins (kernel data)")
    print("=" * 64)
    print(render_table1(nexus5_table()))

    for model in study.models:
        print()
        print("=" * 64)
        print(f"FIGURES — {model}")
        print("=" * 64)
        print(render_experiment(study.performance(model), "performance"))
        print(render_experiment(study.energy(model), "energy"))

    print()
    print("=" * 64)
    print("TABLE II — summary of energy-performance variations")
    print("=" * 64)
    print(render_table2(study.table2_rows()))
    print("\npaper's numbers for comparison:")
    for model, target in TABLE2_TARGETS.items():
        print(
            f"  {model:<14s} perf {target.performance:4.0%}   "
            f"energy {target.energy:4.0%}"
        )

    print()
    print("=" * 64)
    print("FIGURE 13 — relative efficiency across generations")
    print("=" * 64)
    print(render_efficiency(study.efficiency_points()))


if __name__ == "__main__":
    main()
