"""The silicon lottery: bin odds, leakage stakes, and die hotspots.

Three views of what's hidden under the paper's identical-looking phones:

1. the odds — how production splits across voltage bins, and the chance
   your unit is at least as good as a given bin (paper §VI's bin
   distribution question);
2. the stakes — each bin's leakage multiplier, i.e. what you actually won
   or lost;
3. the die — a Therminator-style temperature map showing the per-core
   hotspots the lumped campaign simulator abstracts into one node.

    python examples/silicon_lottery.py
"""

from repro.silicon import PROCESS_28NM_LP, lottery_odds_table
from repro.thermal import GridThermalModel, sd800_floorplan


def show_lottery() -> None:
    print("The Nexus 5 silicon lottery (28 nm, 7 voltage bins):\n")
    print(f"{'bin':>5s} {'share':>8s} {'at least':>9s} {'leakage x':>10s}")
    for bin_index, share, cumulative, leak in lottery_odds_table(
        PROCESS_28NM_LP, bin_count=7
    ):
        print(
            f"{bin_index:5d} {share:8.1%} {cumulative:9.1%} {leak:10.2f}"
        )
    print(
        "\nA bin-0 chip (the Figure 6 winner) is drawn by fewer than one in "
        "ten buyers;\nthe leakiest bins pay ~3x the nominal static power for "
        "the same sticker price."
    )


def show_die() -> None:
    print("\nDie temperature map, one core at full tilt (SD-800 floorplan):")
    model = GridThermalModel(sd800_floorplan(), grid=(24, 24))
    model.settle({"core1": 1.2, "l2": 0.2, "uncore": 0.3}, package_temp_c=45.0)
    temps = model.temperature_map()
    lo, hi = temps.min(), temps.max()
    shades = " .:-=+*#%@"
    for row in temps[::-1]:  # print with y up
        line = "".join(
            shades[min(len(shades) - 1, int((t - lo) / (hi - lo + 1e-9) * len(shades)))]
            for t in row
        )
        print("   " + line)
    print(
        f"\n   range {lo:.1f}..{hi:.1f} C  |  die mean {model.die_mean_c():.1f} C"
        f"  |  hotspot {model.hotspot_c():.1f} C"
        f"\n   per-core: "
        + "  ".join(
            f"core{i}={model.block_temp_c(f'core{i}'):.1f}C" for i in range(4)
        )
    )
    print(
        "\nWith all four cores busy (the paper's workload) the die is nearly "
        "isothermal,\nwhich is why the campaign simulator's single lumped "
        "'cpu' node is a faithful\nabstraction — see docs/physics.md."
    )


def main() -> None:
    show_lottery()
    show_die()


if __name__ == "__main__":
    main()
