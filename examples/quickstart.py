"""Quickstart: measure process variation on a simulated Nexus 5 fleet.

Runs the paper's two experiments (UNCONSTRAINED for performance,
FIXED-FREQUENCY for energy) over the four Nexus 5 units of the study and
prints the Figure 6 story: bin-0 is both the fastest and the most
energy-efficient chip, despite being binned at the highest voltage.

    python examples/quickstart.py

Takes ~20 seconds (a shortened protocol; pass --paper-scale for the full
3-minute warmup / 5-minute workload protocol).
"""

import sys

from repro import (
    AccubenchConfig,
    CampaignConfig,
    CampaignRunner,
    device_spec,
    fixed_frequency,
    unconstrained,
)
from repro.core.reporting import render_experiment


def main() -> None:
    if "--paper-scale" in sys.argv:
        protocol = AccubenchConfig()  # the paper's durations, 5 iterations
    else:
        protocol = AccubenchConfig(
            warmup_s=90.0, workload_s=150.0, iterations=2, dt=0.2
        )
    runner = CampaignRunner(CampaignConfig(accubench=protocol))

    print("Running UNCONSTRAINED (performance) on the Nexus 5 fleet...")
    performance = runner.run_fleet("Nexus 5", unconstrained())
    print(render_experiment(performance, "performance"))
    print(
        f"-> {performance.best_serial} is "
        f"{performance.performance_variation:.1%} faster than "
        f"{performance.worst_serial} (paper: 14%)\n"
    )

    print("Running FIXED-FREQUENCY (energy) on the Nexus 5 fleet...")
    energy = runner.run_fleet("Nexus 5", fixed_frequency(device_spec("Nexus 5")))
    print(render_experiment(energy, "energy"))
    print(
        f"-> {energy.most_efficient_serial} uses "
        f"{energy.energy_variation:.1%} less energy than the worst unit "
        f"(paper: 19%)"
    )
    print(
        "\nNote the counterintuitive result: bin-0 runs at the HIGHEST "
        "voltage (Table I)\nyet wins both races — its slow transistors "
        "leak the least, so it throttles least\nand wastes the least "
        "static power.  (Paper Section IV-A1.)"
    )


if __name__ == "__main__":
    main()
