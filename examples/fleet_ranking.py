"""Fleet ranking: the paper's §VI crowdsourcing vision, end to end.

Samples a 16-unit synthetic Google Pixel fleet from the manufacturing
lottery, benchmarks every unit, ranks them by a composite
energy-performance quality score, then places "your" phone within the
population and recovers bin structure by clustering (k-means over
performance/energy features).

    python examples/fleet_ranking.py
"""

from repro import AccubenchConfig, CampaignConfig, CampaignRunner, device_spec
from repro.core.clustering import choose_k
from repro.core.experiments import fixed_frequency, unconstrained
from repro.core.ranking import place_unit, rank_units
from repro.device.fleet import synthetic_fleet

FLEET_SIZE = 16


def main() -> None:
    protocol = AccubenchConfig(
        warmup_s=90.0, workload_s=150.0, iterations=2, dt=0.2
    )
    runner = CampaignRunner(
        CampaignConfig(accubench=protocol, use_thermabox=False)
    )

    print(f"Benchmarking a {FLEET_SIZE}-unit synthetic Google Pixel fleet...")
    fleet = synthetic_fleet("Google Pixel", FLEET_SIZE, lot_name="crowd")
    perf = runner.run_fleet("Google Pixel", unconstrained(), devices=fleet)
    fleet_again = synthetic_fleet("Google Pixel", FLEET_SIZE, lot_name="crowd")
    energy = runner.run_fleet(
        "Google Pixel",
        fixed_frequency(device_spec("Google Pixel")),
        devices=fleet_again,
    )

    merged = {
        serial: (perf.by_serial(serial), energy.by_serial(serial))
        for serial in perf.serials
    }

    print("\nLeaderboard (composite performance+energy quality):")
    ranked = rank_units([p for p, _ in merged.values()])
    energy_by_serial = {s: e.energy_j for s, (_, e) in merged.items()}
    for entry in ranked:
        print(
            f"  #{entry.rank:<3d} {entry.serial:<12s} "
            f"percentile {entry.percentile:5.1f}   "
            f"E={energy_by_serial[entry.serial]:6.0f} J"
        )

    mine = ranked[len(ranked) // 2].serial
    placement = place_unit(
        merged[mine][0], [p for s, (p, _) in merged.items() if s != mine]
    )
    print(
        f"\nYour phone ({mine}) ranks #{placement.rank} of {FLEET_SIZE} — "
        f"better than {placement.percentile:.0f}% of the population."
    )

    features = [
        [p.performance, e.energy_j] for p, e in merged.values()
    ]
    k, clusters = choose_k(features, seed=7)
    print(
        f"\nClustering the fleet's (performance, energy) data finds k={k} "
        f"groups\n(assignments: {clusters.assignments}) — recovered bin "
        "structure without any\nmanufacturer label, as §VI proposes."
    )


if __name__ == "__main__":
    main()
