"""Battery aging: why your old phone feels slow (and it isn't the silicon).

The paper's Section IV-C connects the LG G5's input-voltage throttling to
the contemporaneous "old iPhones are throttled" reports: battery supply
voltage falls with wear, so a voltage-triggered frequency cap slowly eats
performance over a phone's lifetime.  This example walks a G5 through its
battery's life and maps when, at each age, the throttle engages.

    python examples/battery_aging.py
"""

from repro import AccubenchConfig
from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.device.aging import BatteryAge, aged_battery, throttle_onset_soc
from repro.device.catalog import lg_g5
from repro.device.fleet import PAPER_FLEETS, build_device

AGES = (0.0, 200.0, 400.0, 600.0, 800.0)
CHARGE = 0.97


def main() -> None:
    spec = lg_g5()
    threshold = spec.voltage_throttle.threshold_v

    print(
        "LG G5 input-voltage throttle: caps the CPU when the supply is at "
        f"or below {threshold} V.\n"
    )
    print(f"{'cycles':>7s} {'capacity':>9s} {'sag @4W':>8s} {'cap engages below':>18s}")
    for cycles in AGES:
        age = BatteryAge(cycles=cycles)
        battery = aged_battery(spec.battery, age, state_of_charge=CHARGE)
        open_v = battery.output_voltage_v
        battery.draw(4.0, 1e-6)
        sag = open_v - battery.output_voltage_v
        onset = throttle_onset_soc(
            spec.battery, age, threshold_v=threshold, load_w=4.0
        )
        print(
            f"{cycles:7.0f} {age.capacity_fraction():8.0%} {sag:7.2f}V "
            f"{onset:17.0%}"
        )

    print("\nBenchmarking the same unit at each battery age (97% charge)...")
    bench = Accubench(AccubenchConfig(warmup_s=90.0, workload_s=150.0, iterations=1))
    baseline = None
    for cycles in AGES:
        device = build_device(PAPER_FLEETS["LG G5"][2])
        device.connect_supply(
            aged_battery(
                device.spec.battery, BatteryAge(cycles=cycles),
                state_of_charge=CHARGE,
            )
        )
        score = bench.run_iteration(device, unconstrained()).iterations_completed
        if baseline is None:
            baseline = score
        bar = "#" * round(40 * score / baseline)
        print(f"  {cycles:4.0f} cycles: {score:7.0f} iterations  {bar}")

    print(
        "\nSame chip, same charger, same apps — the only thing that aged is "
        "the battery.\nThe throttle onset climbing toward 100% charge means "
        "an old phone spends most\nof every day capped.  (Paper Section "
        "IV-C: 'researchers have to now account\nfor more than just the "
        "battery capacity.')"
    )


if __name__ == "__main__":
    main()
