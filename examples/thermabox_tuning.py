"""THERMABOX tuning: build and characterize your own thermal chamber.

The paper calls its experimental setup "a contribution unto itself."
This example exercises the chamber model the way you'd commission a real
build: settle time from a cold start, regulation quality under device
load, actuator duty cycles, and what happens if you skimp on the
compressor's minimum-off-time protection.

    python examples/thermabox_tuning.py
"""

import numpy as np

from repro import Thermabox, ThermaboxConfig


def characterize(config: ThermaboxConfig, label: str, room_c: float) -> None:
    box = Thermabox(config, initial_temp_c=room_c, rng=np.random.default_rng(1))
    settle_s = box.wait_until_stable(room_c)

    errors = []
    switches = 0
    cooler_was_on = box.cooler_on
    for _ in range(1800):
        box.step(room_c, 1.0, load_w=4.0)  # a phone under test inside
        errors.append(box.air_temp_c - config.target_c)
        if box.cooler_on != cooler_was_on:
            switches += 1
            cooler_was_on = box.cooler_on

    worst = max(abs(e) for e in errors)
    print(f"\n{label} (room {room_c:.0f} C):")
    print(f"  settle time          : {settle_s:6.0f} s")
    print(f"  worst excursion      : {worst:6.2f} C (spec ±{config.tolerance_c} C)")
    print(f"  mean error           : {np.mean(errors):+6.3f} C")
    print(f"  heater duty          : {box.heater_duty_seconds / 1800:6.1%}")
    print(f"  compressor duty      : {box.cooler_duty_seconds / 1800:6.1%}")
    print(f"  compressor switches  : {switches // 2:6d} starts in 30 min")


def main() -> None:
    print("Commissioning the THERMABOX model (paper Figure 3)...")

    characterize(ThermaboxConfig(), "paper build, cool room", room_c=22.0)
    characterize(ThermaboxConfig(), "paper build, warm room", room_c=29.0)

    beefy = ThermaboxConfig(heater_w=400.0, cooler_w=350.0, deadband_c=0.15)
    characterize(beefy, "overpowered actuators", room_c=22.0)

    gentle = ThermaboxConfig(compressor_min_off_s=120.0)
    characterize(gentle, "long compressor rest (2 min)", room_c=29.0)

    print(
        "\nTakeaways: the stock 250 W halogen + compressor build holds "
        "±0.5 °C with a\nphone dissipating inside; oversizing actuators "
        "tightens regulation but\nshort-cycles the compressor — the "
        "minimum-off-time guard trades a little\nregulation for machine "
        "lifetime, exactly as in a physical build."
    )


if __name__ == "__main__":
    main()
