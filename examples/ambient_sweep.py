"""Ambient sweep: how room temperature silently taxes your battery.

Reproduces the Figure 2 experiment: the same fixed amount of work costs
substantially more energy at higher ambient temperature, because leakage
grows exponentially with temperature and heat begets heat.  Also shows
why "put the phone in the fridge before running Antutu" (Guo et al. [11])
works.

    python examples/ambient_sweep.py
"""

from repro import AccubenchConfig, MonsoonPowerMonitor
from repro.core.protocol import Accubench
from repro.device.fleet import PAPER_FLEETS, build_device
from repro.thermal.ambient import ConstantAmbient

AMBIENTS_C = (5.0, 15.0, 26.0, 35.0, 42.0)
WORK_ITERATIONS = 300.0
PINNED_MHZ = 1574.0


def energy_for_work(ambient_c: float) -> tuple:
    device = build_device(PAPER_FLEETS["Nexus 5"][3], initial_temp_c=ambient_c)
    device.connect_supply(MonsoonPowerMonitor(3.8))
    bench = Accubench(AccubenchConfig())
    result = bench.run_fixed_work(
        device,
        WORK_ITERATIONS,
        room=ConstantAmbient(ambient_c),
        skip_conditioning=True,
        fixed_freq_mhz=PINNED_MHZ,
    )
    return result.energy_j, result.max_cpu_temp_c


def main() -> None:
    print(
        f"Energy to complete {WORK_ITERATIONS:.0f} iterations on a Nexus 5 "
        f"(bin-3) at {PINNED_MHZ:.0f} MHz:\n"
    )
    print(f"{'ambient':>8s} {'energy':>9s} {'peak die':>9s}   relative")
    baseline = None
    for ambient in AMBIENTS_C:
        energy, peak = energy_for_work(ambient)
        if baseline is None:
            baseline = energy
        rel = energy / baseline
        bar = "#" * round(30 * rel)
        print(f"{ambient:7.0f}C {energy:8.0f}J {peak:8.1f}C   {rel:5.2f} {bar}")
    print(
        "\nThe same work costs tens of percent more in a hot room — and a "
        "benchmark run\nin a fridge scores accordingly better.  This is why "
        "every measurement in the\npaper happens inside the THERMABOX at "
        "26 ± 0.5 °C."
    )


if __name__ == "__main__":
    main()
