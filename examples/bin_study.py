"""Bin study: watch thermal throttling separate two 'identical' phones.

Reproduces the Figure 12 analysis: run ACCUBENCH on a bin-1 and a bin-3
Nexus 5 with full traces, then compare their frequency and temperature
distributions over the workload.  The performance delta and the
mean-frequency delta agree — the paper's evidence that process variation
acts through thermal throttling.

    python examples/bin_study.py
"""

from repro import AccubenchConfig, MonsoonPowerMonitor
from repro.core.distributions import compare_pair, summarize_workload
from repro.core.experiments import unconstrained
from repro.core.protocol import Accubench
from repro.device.fleet import PAPER_FLEETS, build_device


def run_bin(bench: Accubench, bin_index: int):
    unit = PAPER_FLEETS["Nexus 5"][bin_index]
    device = build_device(unit)
    device.connect_supply(MonsoonPowerMonitor(3.8))
    result = bench.run_iteration(device, unconstrained())
    return result, summarize_workload(result.trace, device.serial)


def ascii_histogram(counts, edges, width=40) -> str:
    peak = counts.max() if counts.size else 1
    lines = []
    for count, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * round(width * count / peak) if peak else ""
        lines.append(f"    {lo:7.0f}-{hi:<7.0f} {bar}")
    return "\n".join(lines)


def main() -> None:
    bench = Accubench(
        AccubenchConfig(warmup_s=180.0, workload_s=300.0, iterations=1).with_traces()
    )
    print("Running ACCUBENCH on Nexus 5 bin-1 and bin-3 (full traces)...")
    (res1, sum1) = run_bin(bench, 1)
    (res3, sum3) = run_bin(bench, 3)

    comparison = compare_pair(sum1, sum3)
    perf_delta = (
        res1.iterations_completed - res3.iterations_completed
    ) / res3.iterations_completed

    print(f"\nbin-1 score: {res1.iterations_completed:7.1f} iterations")
    print(f"bin-3 score: {res3.iterations_completed:7.1f} iterations")
    print(f"performance delta : {perf_delta:6.1%}   (paper Fig 12: ~11%)")
    print(f"mean-freq delta   : {comparison.mean_freq_delta:6.1%}   (should match)")

    for summary in (sum1, sum3):
        counts, edges = summary.freq_histogram
        print(f"\n  {summary.serial} workload frequency distribution (MHz):")
        print(ascii_histogram(counts, edges))

    print(
        f"\nTemperatures: bin-1 peaked at {sum1.max_temp_c:.1f} C, "
        f"bin-3 at {sum3.max_temp_c:.1f} C;"
        f"\nbin-3 spent {sum3.time_above_hot_s:.0f} s above 70 C vs "
        f"bin-1's {sum1.time_above_hot_s:.0f} s — leakier silicon, more "
        "mitigation, lower clocks."
    )


if __name__ == "__main__":
    main()
