"""Governor showdown: who wins the bursty-load race?

The paper pins its workload to isolate silicon effects; real phones run
bursty loads under a governor.  This example replays the same burst/idle
pattern on a Nexus 5 under three governors and scores each on work done,
energy used, and peak temperature — the classic responsiveness-vs-battery
trade the interactive governor was designed around.

    python examples/governor_showdown.py
"""

from repro.device.fleet import PAPER_FLEETS, build_device
from repro.instruments.monsoon import MonsoonPowerMonitor
from repro.sim.engine import World
from repro.soc.dvfs import InteractiveGovernor, OndemandGovernor, PerformanceGovernor
from repro.soc.perf import iterations_from_ops

BURST_S = 3.0
LIGHT_S = 5.0
LIGHT_UTILIZATION = 0.25
CYCLES = 40


def run(governor_name: str):
    device = build_device(PAPER_FLEETS["Nexus 5"][2])
    monsoon = MonsoonPowerMonitor(3.8)
    device.connect_supply(monsoon)
    governor = {
        "performance": PerformanceGovernor(),
        "interactive": InteractiveGovernor(hispeed_freq_mhz=1190.0),
        "ondemand": OndemandGovernor(),
    }[governor_name]

    world = World(device, dt=0.1, trace_decimation=2)
    device.acquire_wakelock()
    monsoon.reset_counters()
    for _ in range(CYCLES):
        device.start_load(utilization=1.0)
        device.soc.set_governor(governor)  # start_load reinstalls governors
        world.run_for(BURST_S)
        # Light phase: the screen-on lull between bursts (typing, reading).
        device.start_load(utilization=LIGHT_UTILIZATION)
        device.soc.set_governor(governor)
        world.run_for(LIGHT_S)
    return {
        "iterations": iterations_from_ops(world.ops_total),
        "energy_j": monsoon.energy_j,
        "peak_temp_c": world.trace.max("cpu_temp"),
    }


def main() -> None:
    print(
        f"Bursty load on a Nexus 5 (bin-2): {CYCLES} cycles of "
        f"{BURST_S:.0f} s full burst / {LIGHT_S:.0f} s light load "
        f"({LIGHT_UTILIZATION:.0%})\n"
    )
    print(f"{'governor':<14s} {'work':>8s} {'energy':>8s} {'it/kJ':>7s} {'peak':>7s}")
    for name in ("performance", "interactive", "ondemand"):
        result = run(name)
        per_kj = result["iterations"] / (result["energy_j"] / 1000.0)
        print(
            f"{name:<14s} {result['iterations']:8.1f} "
            f"{result['energy_j']:7.0f}J {per_kj:7.1f} "
            f"{result['peak_temp_c']:6.1f}C"
        )
    print(
        "\nThe performance governor races through light phases at maximum "
        "voltage and\npays for it in joules; ondemand drops to the floor and "
        "does the least work;\ninteractive lands in between — the trade that "
        "made it the era's shipped default."
    )


if __name__ == "__main__":
    main()
